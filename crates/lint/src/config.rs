//! `lint.toml` — rule scopes, exemptions and knobs.
//!
//! The build environment is fully offline, so instead of a TOML crate the
//! config is parsed by a deliberately minimal TOML-subset reader: table
//! headers (`[rules.hash-iteration]`), `key = value` pairs with string /
//! bool / integer / string-array values (arrays may span lines), and `#`
//! comments. Unknown tables and keys are hard errors — a typo'd scope
//! entry must fail the gate, not silently lint nothing.

use std::collections::BTreeMap;
use std::fmt;

use crate::rules::RuleId;

/// One parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    StrArray(Vec<String>),
}

/// Configuration of a single rule family.
#[derive(Debug, Clone)]
pub struct RuleCfg {
    pub enabled: bool,
    /// Glob patterns (workspace-relative, `/`-separated) a file must
    /// match for the rule to apply. `**` crosses directory boundaries.
    pub scope: Vec<String>,
    /// Glob patterns carved back out of `scope`.
    pub exempt: Vec<String>,
    /// Lint code inside `#[cfg(test)]` items too?
    pub include_tests: bool,
    /// Panic policy only: is `.expect("invariant message")` the
    /// sanctioned escape hatch (true) or forbidden like `unwrap` (false)?
    pub allow_expect: bool,
    /// Panic policy only: also forbid `x[i]` indexing expressions.
    pub forbid_indexing: bool,
    /// Alloc discipline only: method calls permitted inside hot-path
    /// zones even though they match the allocating-method table. Entries
    /// are a bare method name (`"push"` — allowed on any receiver) or a
    /// `receiver.method` pair (`"outbox.push"` — allowed only on that
    /// receiver), for preallocated-scratch methods whose capacity is
    /// reserved up front.
    pub allow_calls: Vec<String>,
    /// Bounds provenance only: substrings (or, for entries of ≤ 2 chars,
    /// exact names) that make an identifier count as a length/bound when
    /// cited in a SAFETY comment.
    pub bound_hints: Vec<String>,
    /// RNG discipline only: root seed-derivation function names; the
    /// cross-file fixpoint grows the set transitively from these.
    pub derivation_roots: Vec<String>,
}

/// Default [`RuleCfg::bound_hints`]: the length/bound vocabulary of this
/// workspace (slice lens, capacities, tile/stride geometry, GF lane
/// counts), kept here so fixtures and the real config agree.
pub const DEFAULT_BOUND_HINTS: [&str; 18] = [
    "len", "cap", "capacity", "count", "size", "stride", "bytes", "rank", "rows", "cols", "width",
    "end", "lanes", "dim", "limbs", "chunks", "n", "k",
];

impl Default for RuleCfg {
    fn default() -> Self {
        Self {
            enabled: true,
            scope: Vec::new(),
            exempt: Vec::new(),
            include_tests: false,
            allow_expect: true,
            forbid_indexing: false,
            allow_calls: Vec::new(),
            bound_hints: DEFAULT_BOUND_HINTS
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            derivation_roots: vec!["splitmix64".to_owned()],
        }
    }
}

/// The whole tool configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) walked for `.rs` files.
    pub source_roots: Vec<String>,
    /// Glob patterns excluded from every rule (fixtures, build output).
    pub exclude: Vec<String>,
    /// Path (workspace-relative) of the generated unsafe inventory.
    pub inventory_path: String,
    rules: BTreeMap<RuleId, RuleCfg>,
}

impl Config {
    /// The configuration of one rule family (default if absent).
    #[must_use]
    pub fn rule(&self, id: RuleId) -> RuleCfg {
        self.rules.get(&id).cloned().unwrap_or_default()
    }

    /// Does `rule` apply to the workspace-relative `path` (before the
    /// per-line test filter)?
    #[must_use]
    pub fn applies(&self, id: RuleId, path: &str) -> bool {
        let rc = self.rule(id);
        rc.enabled
            && rc.scope.iter().any(|p| glob_match(p, path))
            && !rc.exempt.iter().any(|p| glob_match(p, path))
    }

    /// Parse a `lint.toml` document.
    pub fn from_toml_str(src: &str) -> Result<Self, ConfigError> {
        let tables = parse_tables(src)?;
        let mut cfg = Config {
            source_roots: Vec::new(),
            exclude: Vec::new(),
            inventory_path: "UNSAFE_INVENTORY.md".to_owned(),
            rules: BTreeMap::new(),
        };
        for (table, entries) in tables {
            if table.is_empty() {
                for (key, value) in entries {
                    match (key.as_str(), value) {
                        ("version", Value::Int(_)) => {}
                        ("source_roots", Value::StrArray(v)) => cfg.source_roots = v,
                        ("exclude", Value::StrArray(v)) => cfg.exclude = v,
                        ("inventory", Value::Str(s)) => cfg.inventory_path = s,
                        (k, _) => return Err(ConfigError::UnknownKey(k.to_owned())),
                    }
                }
            } else if let Some(rule_name) = table.strip_prefix("rules.") {
                let id = RuleId::parse(rule_name)
                    .ok_or_else(|| ConfigError::UnknownRule(rule_name.to_owned()))?;
                let mut rc = RuleCfg::default();
                for (key, value) in entries {
                    match (key.as_str(), value) {
                        ("enabled", Value::Bool(b)) => rc.enabled = b,
                        ("scope", Value::StrArray(v)) => rc.scope = v,
                        ("exempt", Value::StrArray(v)) => rc.exempt = v,
                        ("include_tests", Value::Bool(b)) => rc.include_tests = b,
                        ("allow_expect", Value::Bool(b)) => rc.allow_expect = b,
                        ("forbid_indexing", Value::Bool(b)) => rc.forbid_indexing = b,
                        ("allow_calls", Value::StrArray(v)) => rc.allow_calls = v,
                        ("bound_hints", Value::StrArray(v)) => rc.bound_hints = v,
                        ("derivation_roots", Value::StrArray(v)) => rc.derivation_roots = v,
                        (k, _) => {
                            return Err(ConfigError::UnknownKey(format!("rules.{rule_name}.{k}")))
                        }
                    }
                }
                cfg.rules.insert(id, rc);
            } else {
                return Err(ConfigError::UnknownKey(format!("[{table}]")));
            }
        }
        if cfg.source_roots.is_empty() {
            return Err(ConfigError::Missing("source_roots"));
        }
        Ok(cfg)
    }
}

/// Errors from [`Config::from_toml_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A line the subset parser could not read, with its 1-based number.
    Syntax(usize, String),
    UnknownKey(String),
    UnknownRule(String),
    Missing(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax(line, text) => write!(f, "lint.toml:{line}: cannot parse: {text}"),
            ConfigError::UnknownKey(k) => write!(f, "lint.toml: unknown key `{k}`"),
            ConfigError::UnknownRule(r) => write!(f, "lint.toml: unknown rule `{r}`"),
            ConfigError::Missing(k) => write!(f, "lint.toml: missing required key `{k}`"),
        }
    }
}

impl std::error::Error for ConfigError {}

type Tables = Vec<(String, Vec<(String, Value)>)>;

fn parse_tables(src: &str) -> Result<Tables, ConfigError> {
    let mut tables: Tables = vec![(String::new(), Vec::new())];
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| ConfigError::Syntax(idx + 1, raw.to_owned()))?;
            tables.push((header.trim().to_owned(), Vec::new()));
            continue;
        }
        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| ConfigError::Syntax(idx + 1, raw.to_owned()))?;
        let key = key.trim().to_owned();
        let mut value_text = rest.trim().to_owned();
        // Multi-line array: accumulate until the closing bracket.
        if value_text.starts_with('[') {
            while !array_closed(&value_text) {
                let Some((_, cont)) = lines.next() else {
                    return Err(ConfigError::Syntax(idx + 1, raw.to_owned()));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(cont).trim());
            }
        }
        let value =
            parse_value(&value_text).ok_or_else(|| ConfigError::Syntax(idx + 1, raw.to_owned()))?;
        tables
            .last_mut()
            .expect("tables always holds the root table")
            .1
            .push((key, value));
    }
    Ok(tables)
}

/// Strip a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn array_closed(text: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(text: &str) -> Option<Value> {
    let text = text.trim();
    if text == "true" {
        return Some(Value::Bool(true));
    }
    if text == "false" {
        return Some(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let s = inner.strip_suffix('"')?;
        return (!s.contains('"')).then(|| Value::Str(s.to_owned()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']')?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return None,
            }
        }
        return Some(Value::StrArray(items));
    }
    text.parse::<i64>().ok().map(Value::Int)
}

/// Split on commas outside strings.
fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

/// Match a `/`-separated glob against a `/`-separated relative path.
/// `**` matches any number of path segments (including zero), `*`
/// matches within one segment.
#[must_use]
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => (0..=segs.len()).any(|skip| match_segments(&pat[1..], &segs[skip..])),
        Some(p) => match segs.first() {
            Some(s) if match_one(p, s) => match_segments(&pat[1..], &segs[1..]),
            _ => false,
        },
    }
}

/// Match one glob segment (with `*` wildcards) against one path segment.
fn match_one(pat: &str, seg: &str) -> bool {
    let pb: Vec<char> = pat.chars().collect();
    let sb: Vec<char> = seg.chars().collect();
    match_chars(&pb, &sb)
}

fn match_chars(pat: &[char], seg: &[char]) -> bool {
    match pat.first() {
        None => seg.is_empty(),
        Some('*') => (0..=seg.len()).any(|skip| match_chars(&pat[1..], &seg[skip..])),
        Some(c) => seg.first() == Some(c) && match_chars(&pat[1..], &seg[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globs_match_segments_and_wildcards() {
        assert!(glob_match("crates/sim/**", "crates/sim/src/engine.rs"));
        assert!(glob_match("crates/*/src/**", "crates/gf/src/simd.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match("**/*.rs", "a/b/c.rs"));
        assert!(glob_match("**/*.rs", "c.rs"));
        assert!(glob_match(
            "crates/core/src/seeding.rs",
            "crates/core/src/seeding.rs"
        ));
        assert!(!glob_match("crates/sim/**", "crates/gf/src/simd.rs"));
        assert!(!glob_match("crates/*/src/*.rs", "crates/gf/src/bin/x.rs"));
    }

    #[test]
    fn minimal_toml_round_trips() {
        let cfg = Config::from_toml_str(concat!(
            "version = 1\n",
            "source_roots = [\"crates\", \"src\"] # comment\n",
            "exclude = [\n",
            "    \"crates/lint/fixtures/**\", # deliberate violations\n",
            "    \"target/**\",\n",
            "]\n",
            "inventory = \"UNSAFE_INVENTORY.md\"\n",
            "\n",
            "[rules.panic-policy]\n",
            "scope = [\"crates/gf/src/*.rs\"]\n",
            "allow_expect = false\n",
            "forbid_indexing = true\n",
        ))
        .expect("config parses");
        assert_eq!(cfg.source_roots, vec!["crates", "src"]);
        assert_eq!(cfg.exclude.len(), 2);
        let rc = cfg.rule(RuleId::PanicPolicy);
        assert!(!rc.allow_expect);
        assert!(rc.forbid_indexing);
        assert!(cfg.applies(RuleId::PanicPolicy, "crates/gf/src/simd.rs"));
        assert!(!cfg.applies(RuleId::PanicPolicy, "crates/sim/src/engine.rs"));
    }

    #[test]
    fn unknown_keys_and_rules_are_hard_errors() {
        assert!(matches!(
            Config::from_toml_str("source_roots = [\"crates\"]\n[rules.no-such-rule]\n"),
            Err(ConfigError::UnknownRule(_))
        ));
        assert!(matches!(
            Config::from_toml_str("source_roots = [\"crates\"]\ntypo_key = 3\n"),
            Err(ConfigError::UnknownKey(_))
        ));
        assert!(matches!(
            Config::from_toml_str("[rules.panic-policy]\nscopes = []\n"),
            Err(ConfigError::UnknownKey(_))
        ));
    }

    #[test]
    fn exempt_carves_out_of_scope() {
        let cfg = Config::from_toml_str(concat!(
            "source_roots = [\"crates\"]\n",
            "[rules.wall-clock]\n",
            "scope = [\"crates/**\"]\n",
            "exempt = [\"crates/bench/**\"]\n",
        ))
        .expect("config parses");
        assert!(cfg.applies(RuleId::WallClock, "crates/sim/src/engine.rs"));
        assert!(!cfg.applies(RuleId::WallClock, "crates/bench/src/bin/b.rs"));
    }
}
