//! Phase-2 dataflow helpers: lightweight, lexical, and deliberately
//! over-approximate in the safe direction.
//!
//! The `rng-discipline` family needs to answer "does the seed expression
//! of this RNG construction flow from a seedmix derivation?" without a
//! real parser. Three facts make that tractable here:
//!
//! * derivations are *calls* — `splitmix64(…)` or a helper that bottoms
//!   out in it (resolved transitively by the cross-file fixpoint in
//!   [`crate::lib`]'s run pass);
//! * seed-carrying values are *named like seeds* throughout this
//!   codebase (`seed`, `seed0`, `config.seed`, `round_key`, `cell_key`) —
//!   a convention the lint turns into a checked contract: an identifier
//!   whose name mentions neither is treated as unkeyed;
//! * within one function, `let` bindings propagate the property
//!   (`let round_key = splitmix64(…); … seed_from_u64(round_key ^ …)`),
//!   which a two-pass scan over the body resolves.

use std::collections::BTreeSet;

use crate::index::Span;
use crate::scan::{is_ident_char, ScannedFile};

/// Iterate the identifiers in a code/comment string.
pub fn idents(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = text;
    let mut base = 0usize;
    while let Some(start_rel) = rest.find(|c: char| is_ident_char(c)) {
        let start = base + start_rel;
        let tail = &text[start..];
        let len = tail.find(|c: char| !is_ident_char(c)).unwrap_or(tail.len());
        let word = &text[start..start + len];
        if !word.starts_with(|c: char| c.is_ascii_digit()) {
            out.push(word);
        }
        base = start + len;
        rest = &text[base..];
    }
    out
}

/// Is this identifier seed-carrying by naming convention?
#[must_use]
pub fn is_seed_named(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    lower.contains("seed") || lower.contains("key") || lower == "gamma" || lower.contains("gamma")
}

/// The balanced-paren argument text of a call whose opening `(` sits at
/// byte `open` of line `line` (0-based), joined across continuation
/// lines. Returns the text between the parens (exclusive).
#[must_use]
pub fn call_arg_text(file: &ScannedFile, line: usize, open: usize) -> String {
    let mut out = String::new();
    let mut depth = 0i64;
    let mut li = line;
    let mut started = false;
    let mut col = open;
    while li < file.lines.len() {
        let code = &file.lines[li].code;
        for (i, c) in code.char_indices() {
            if li == line && i < col {
                continue;
            }
            match c {
                '(' => {
                    depth += 1;
                    if depth == 1 {
                        started = true;
                        continue;
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                }
                _ => {}
            }
            if started && depth >= 1 {
                out.push(c);
            }
        }
        out.push(' ');
        li += 1;
        col = 0;
        if li > line + 20 {
            // Degenerate input: bail rather than scan the whole file.
            break;
        }
    }
    out
}

/// Identifiers `let`-bound to seed-derived expressions inside `span`,
/// given the cross-file set of derivation functions. Two passes resolve
/// chains (`let a = splitmix64(s); let b = a ^ 1;`).
#[must_use]
pub fn seed_derived_idents(
    file: &ScannedFile,
    span: Span,
    derivation_fns: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut derived: BTreeSet<String> = BTreeSet::new();
    for _pass in 0..2 {
        for line in &file.lines[span.start..=span.end.min(file.lines.len() - 1)] {
            let code = &line.code;
            let Some((lhs, rhs)) = split_let_binding(code) else {
                continue;
            };
            if expr_is_seed_derived(rhs, derivation_fns, &derived) {
                derived.insert(lhs.to_owned());
            }
        }
    }
    derived
}

/// `let [mut] name = RHS` → `(name, RHS)`; `None` for anything else.
fn split_let_binding(code: &str) -> Option<(&str, &str)> {
    let let_pos = find_token(code, "let")?;
    let after = code[let_pos + 3..].trim_start();
    let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
    let name_len = after
        .find(|c: char| !is_ident_char(c))
        .unwrap_or(after.len());
    let name = &after[..name_len];
    if name.is_empty() || name.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    let rest = after[name_len..].trim_start();
    // Skip a `: Type` ascription up to the `=` (but not `==`).
    let eq = rest.find('=')?;
    if rest.as_bytes().get(eq + 1) == Some(&b'=') {
        return None;
    }
    Some((name, &rest[eq + 1..]))
}

/// Is this expression text seed-derived: a derivation call, a
/// seed-named identifier, or a previously derived identifier?
#[must_use]
pub fn expr_is_seed_derived(
    expr: &str,
    derivation_fns: &BTreeSet<String>,
    derived: &BTreeSet<String>,
) -> bool {
    for id in idents(expr) {
        if derivation_fns.contains(id) || derived.contains(id) || is_seed_named(id) {
            return true;
        }
    }
    false
}

/// Is `expr` a bare integer literal (`42`, `0xFF`, `1_000u64`)?
#[must_use]
pub fn is_integer_literal(expr: &str) -> bool {
    let t = expr.trim();
    if t.is_empty() {
        return false;
    }
    let t = t
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("usize")
        .trim_end_matches("i64");
    let t = t.trim_end_matches('_');
    let digits = t.strip_prefix("0x").unwrap_or(t);
    !digits.is_empty() && digits.chars().all(|c| c.is_ascii_hexdigit() || c == '_')
}

/// Identifiers bound *inside* `span`: `let` bindings, `for` loop
/// variables and closure parameters. Used by the sharded-phase check to
/// separate region-local RNGs (derived from the per-slot key) from
/// captures of the engine's serial RNG.
#[must_use]
pub fn region_bindings(file: &ScannedFile, span: Span) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in &file.lines[span.start..=span.end.min(file.lines.len() - 1)] {
        let code = &line.code;
        if let Some((name, _)) = split_let_binding(code) {
            out.insert(name.to_owned());
        }
        // `for pat in …`
        if let Some(pos) = find_token(code, "for") {
            let between = match find_token(&code[pos..], "in") {
                Some(inp) => &code[pos + 3..pos + inp],
                None => "",
            };
            for id in idents(between) {
                if id != "mut" {
                    out.insert(id.to_owned());
                }
            }
        }
        // Closure parameters: idents between a `|…|` pair.
        if let Some(open) = code.find('|') {
            if let Some(close_rel) = code[open + 1..].find('|') {
                let params = &code[open + 1..open + 1 + close_rel];
                for id in idents(params) {
                    if id != "mut" && !id.starts_with(|c: char| c.is_ascii_uppercase()) {
                        out.insert(id.to_owned());
                    }
                }
            }
        }
    }
    out
}

/// Byte offset of `needle` as a standalone token in `code`.
fn find_token(code: &str, needle: &str) -> Option<usize> {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + needle.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            return Some(at);
        }
        start = at + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn multi_line_call_args_are_joined() {
        let f = scan(concat!(
            "let rng = StdRng::seed_from_u64(splitmix64(\n",
            "    round_key ^ (slot as u64),\n",
            "));\n",
        ));
        let open = f.lines[0].code.find("(").expect("opening paren");
        let arg = call_arg_text(&f, 0, open);
        assert!(arg.contains("splitmix64"));
        assert!(arg.contains("round_key"));
        assert!(!arg.contains(";"));
    }

    #[test]
    fn let_chains_propagate_seed_derivation() {
        let f = scan(concat!(
            "fn f(seed: u64) {\n",
            "    let round_key = splitmix64(seed ^ 3);\n",
            "    let slot_key = round_key ^ 17;\n",
            "    let unrelated = 99;\n",
            "}\n",
        ));
        let derived = seed_derived_idents(&f, Span { start: 0, end: 4 }, &set(&["splitmix64"]));
        assert!(derived.contains("round_key"));
        assert!(derived.contains("slot_key"));
        assert!(!derived.contains("unrelated"));
    }

    #[test]
    fn integer_literals_are_recognized() {
        assert!(is_integer_literal("42"));
        assert!(is_integer_literal("0xDEAD_BEEF"));
        assert!(is_integer_literal("1_000u64"));
        assert!(!is_integer_literal("seed"));
        assert!(!is_integer_literal("seed + 1"));
        assert!(!is_integer_literal(""));
    }

    #[test]
    fn region_bindings_cover_let_for_and_closures() {
        let f = scan(concat!(
            "let mut slot_rng = mk();\n",
            "for slot in worklist {\n",
            "    jobs.map(|(mut shard, wl)| shard.go(wl));\n",
            "}\n",
        ));
        let b = region_bindings(&f, Span { start: 0, end: 3 });
        assert!(b.contains("slot_rng"));
        assert!(b.contains("slot"));
        assert!(b.contains("shard"));
        assert!(b.contains("wl"));
        assert!(!b.contains("worklist"));
    }
}
