//! A lightweight Rust lexer/line scanner.
//!
//! The rules in [`crate::rules`] are substring matchers, which is only
//! sound if the substrings they look for cannot hide inside string
//! literals or comments (`"call .unwrap() here"` in a doc string must not
//! fire the panic policy). This module does the one pass of real lexing
//! the tool needs: it splits every source line into *code text* (with
//! comment bodies and literal contents blanked out) and *comment text*
//! (where waivers and `// SAFETY:` justifications live), and tracks which
//! lines sit inside a `#[cfg(test)]` item so rules can ignore test code.
//!
//! The lexer understands line and (nested) block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, byte variants),
//! char/byte-char literals, and the char-literal-vs-lifetime ambiguity
//! (`'a'` vs `'a`). It is deliberately *not* a parser: item structure is
//! approximated by brace depth, which is exactly enough to delimit
//! `#[cfg(test)]` modules and functions.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// Source text with comments and literal contents blanked. String and
    /// char delimiters are kept (so `.expect("msg")` stays recognizable
    /// as `.expect("")`), comment spans collapse to a single space.
    pub code: String,
    /// Concatenated comment text on this line, with the `//`/`///`/`//!`
    /// and block markers stripped.
    pub comment: String,
    /// Comment text excluding doc comments (`///`, `//!`): the only place
    /// `ag-lint:` waivers and annotations are honored. Doc text *talking
    /// about* the waiver syntax (module docs, examples) must never parse
    /// as a live waiver — a doc example would otherwise register as an
    /// unused waiver, or worse, silently suppress a finding below it.
    pub plain_comment: String,
    /// True when the line is inside (or is the attribute line of) a
    /// `#[cfg(test)]` item.
    pub in_test: bool,
}

impl ScannedLine {
    /// Does this line carry any non-whitespace code?
    #[must_use]
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }

    /// Is the line's code only an attribute (possibly a fragment of a
    /// multi-line attribute)? Lookback scans (waivers, SAFETY comments)
    /// skip attribute lines between a comment and the item it documents.
    #[must_use]
    pub fn is_attr_only(&self) -> bool {
        let t = self.code.trim();
        (t.starts_with("#[") || t.starts_with("#![")) && t.ends_with(']')
    }
}

/// A whole scanned file.
#[derive(Debug)]
pub struct ScannedFile {
    pub lines: Vec<ScannedLine>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Normal,
    /// Inside `/* … */`, tracking nesting depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string with this many `#`s in its delimiter.
    RawStr(u8),
}

/// Scan one file into per-line code/comment text plus test-region marks.
#[must_use]
pub fn scan(src: &str) -> ScannedFile {
    let mut state = LexState::Normal;
    let mut lines: Vec<ScannedLine> = Vec::new();

    for raw in src.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut plain_comment = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            match state {
                LexState::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        i += 2;
                        if depth == 1 {
                            state = LexState::Normal;
                            code.push(' ');
                        } else {
                            state = LexState::Block(depth - 1);
                        }
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        plain_comment.push(chars[i]);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if chars[i] == '\\' {
                        i += 2; // skip the escaped char (may run past EOL: fine)
                    } else if chars[i] == '"' {
                        code.push('"');
                        state = LexState::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                        code.push('"');
                        state = LexState::Normal;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                LexState::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment (includes /// and //! doc forms).
                        let is_doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
                        let mut j = i + 2;
                        while chars.get(j) == Some(&'/') || chars.get(j) == Some(&'!') {
                            j += 1;
                        }
                        let text: String = chars[j..].iter().collect();
                        comment.push_str(&text);
                        if !is_doc {
                            plain_comment.push_str(&text);
                        }
                        code.push(' ');
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = LexState::Str;
                        i += 1;
                    } else if let Some(hashes) = raw_string_at(&chars, i) {
                        // r"…" / r#"…"# / br#"…"# — jump to just after the
                        // opening quote.
                        let prefix_len = raw_prefix_len(&chars, i);
                        code.push('"');
                        state = LexState::RawStr(hashes);
                        i += prefix_len;
                    } else if c == '\'' {
                        if let Some(end) = char_literal_end(&chars, i) {
                            code.push_str("''");
                            i = end;
                        } else {
                            // A lifetime: keep it as code.
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        lines.push(ScannedLine {
            code,
            comment,
            plain_comment,
            in_test: false,
        });
    }

    mark_test_regions(&mut lines);
    ScannedFile { lines }
}

/// Does a raw string start at `i` (an `r`/`br` prefix followed by `#…"`)?
/// Returns the number of `#`s in the delimiter.
fn raw_string_at(chars: &[char], i: usize) -> Option<u8> {
    let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
    if prev_is_ident {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u8;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Length of the raw-string prefix (`r#…#"`, `br…`) through the opening
/// quote, assuming [`raw_string_at`] matched at `i`.
fn raw_prefix_len(chars: &[char], i: usize) -> usize {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // 'r'
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    j + 1 - i // opening quote
}

/// Does position `i` (just past a closing `"`) carry `hashes` `#`s?
fn closes_raw(chars: &[char], i: usize, hashes: u8) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a char (or byte-char) literal starts at `i` (which holds `'`),
/// return the index just past its closing quote; `None` for a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 2;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                } else if chars[j] == '\'' {
                    return Some(j + 1);
                } else {
                    j += 1;
                }
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 3),
        _ => None,
    }
}

/// Is `c` part of an identifier?
#[must_use]
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Mark every line inside a `#[cfg(test)]` item. An attribute arms a
/// pending flag; the next `{` at any depth opens the test region, which
/// closes when brace depth returns below it. A `;` before any `{`
/// (e.g. `#[cfg(test)] use x;` or `#[cfg(test)] mod tests;`) disarms the
/// flag — the item had no body in this file.
fn mark_test_regions(lines: &mut [ScannedLine]) {
    let mut depth: i64 = 0;
    let mut test_open_depths: Vec<i64> = Vec::new();
    let mut pending = false;
    for line in lines.iter_mut() {
        line.in_test = !test_open_depths.is_empty();
        if line.code.contains("#[cfg(test)]") {
            pending = true;
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        test_open_depths.push(depth);
                        pending = false;
                        // The line opening the test item is part of it.
                        line.in_test = true;
                    }
                }
                '}' => {
                    if test_open_depths.last() == Some(&depth) {
                        test_open_depths.pop();
                    }
                    depth -= 1;
                }
                ';' if pending && test_open_depths.is_empty() => {
                    pending = false;
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked_out_of_code() {
        let f = scan(concat!(
            "let x = \"has .unwrap() inside\"; // and .unwrap() here\n",
            "let y = 1; /* block .unwrap() */ let z = 2;\n",
        ));
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(f.lines[0].comment.contains(".unwrap()"));
        assert!(f.lines[1].code.contains("let z = 2;"));
        assert!(!f.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_and_escapes_do_not_leak_into_code() {
        let f = scan(concat!(
            "let a = r#\"raw unsafe { } \"quoted\" \"#; let tail = 3;\n",
            "let b = \"esc \\\" still string unsafe {\"; let tail2 = 4;\n",
        ));
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].code.contains("let tail = 3;"));
        assert!(!f.lines[1].code.contains("unsafe"));
        assert!(f.lines[1].code.contains("let tail2 = 4;"));
    }

    #[test]
    fn char_literals_close_but_lifetimes_stay_code() {
        let f = scan("fn f<'a>(x: &'a u8) { let q = '\\''; let brace = '{'; }\n");
        // The '{' literal must not look like an opening brace...
        assert!(!f.lines[0].code.contains("'{'"));
        // ...and the lifetime must survive as code.
        assert!(f.lines[0].code.contains("<'a>"));
    }

    #[test]
    fn multiline_block_comments_span_lines() {
        let f = scan("a(); /* start\nstill comment .unwrap()\nend */ b();\n");
        assert!(f.lines[0].code.contains("a();"));
        assert!(!f.lines[1].has_code());
        assert!(f.lines[1].comment.contains(".unwrap()"));
        assert!(f.lines[2].code.contains("b();"));
    }

    #[test]
    fn cfg_test_regions_cover_mods_and_fns() {
        let src = concat!(
            "fn lib() { x.unwrap(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { y.unwrap(); }\n",
            "}\n",
            "fn lib2() {}\n",
        );
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line counts as test");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test, "closing brace still inside region");
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_bodyless_item_disarms_at_semicolon() {
        let src = concat!("#[cfg(test)]\nmod tests;\n", "fn lib() { z(); }\n");
        let f = scan(src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn doc_comments_are_excluded_from_plain_comment_text() {
        let f = scan(concat!(
            "//! for example `// ag-lint: allow(panic-policy) — doc text`\n",
            "/// ag-lint: hot-path — also just documentation\n",
            "// ag-lint: allow(panic-policy) — a live waiver\n",
            "let x = 1; /* block ag-lint: text */\n",
        ));
        assert!(f.lines[0].comment.contains("ag-lint:"));
        assert!(!f.lines[0].plain_comment.contains("ag-lint:"));
        assert!(!f.lines[1].plain_comment.contains("ag-lint:"));
        assert!(f.lines[2].plain_comment.contains("a live waiver"));
        assert!(
            f.lines[3].plain_comment.contains("ag-lint:"),
            "block comments are plain"
        );
    }

    #[test]
    fn attr_only_lines_are_recognized() {
        let f = scan("#[cfg(test)]\n#[allow(dead_code)] // note\nlet x = 1;\n");
        assert!(f.lines[0].is_attr_only());
        assert!(f.lines[1].is_attr_only());
        assert!(!f.lines[2].is_attr_only());
    }
}
