//! `ag-lint` — the workspace's static-analysis pass.
//!
//! The repo's central claim is that simulation runs are a *pure function
//! of the seed*: bit-identical across shard counts, thread counts and
//! reruns. Runtime tests (golden pins, differential suites) defend that
//! claim after the fact; this crate defends it *statically*, because the
//! bug classes that break it are lexically recognizable:
//!
//! * iteration over hash-ordered collections (the exact latent bug PR 1
//!   fixed in `RandomMessageGossip`, where `HashSet` iteration order
//!   leaked into message picks),
//! * wall-clock and environment reads inside the simulation stack,
//! * truncating casts in seed-mixing/RNG-keying code.
//!
//! Two more families turn implicit repo policy into checked policy: every
//! `unsafe` site must carry a `// SAFETY:` justification (and is listed
//! in a committed, drift-checked `UNSAFE_INVENTORY.md`), and library code
//! must not `unwrap`/`panic!` — `.expect("invariant")` with a real
//! message, typed errors, or an explicit waiver are the only outs.
//!
//! v2 grew the pass into a two-phase analyzer. Phase 1 ([`index`]) builds
//! a per-file symbol/region index (fn boundaries, call sites, annotated
//! regions, unsafe spans) and a cross-file seed-derivation fixpoint;
//! phase 2 adds three families over it: `rng-discipline` (every RNG
//! keyed through the `seedmix` chain), `alloc-discipline` (no allocating
//! constructs inside `// ag-lint: hot-path` zones) and
//! `bounds-provenance` (pointer-arithmetic SAFETY comments must cite a
//! real len/bound from the enclosing scope).
//!
//! Everything is pure `std` (the container is offline), driven by a
//! lightweight lexer/line scanner — no `syn`, no type information. The
//! rules, their per-crate scopes and the waiver syntax live in the root
//! `lint.toml`; see the README's static-analysis section for the rule
//! table and `crates/lint/fixtures/` for known-good/known-bad examples
//! every rule family is self-tested against.

pub mod config;
pub mod dataflow;
pub mod index;
pub mod inventory;
pub mod rules;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use index::FileIndex;
use rules::{Finding, RuleId};
use scan::{scan, ScannedFile};

/// Result of linting a workspace.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_honored: usize,
    /// Rendered `UNSAFE_INVENTORY.md` content for this tree.
    pub inventory: String,
}

/// Run the whole pass over the workspace rooted at `root`.
pub fn run(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut paths: Vec<String> = Vec::new();
    for src_root in &cfg.source_roots {
        collect_rs_files(root, Path::new(src_root), &mut paths)?;
    }
    paths.sort();
    paths.dedup();
    paths.retain(|p| !cfg.exclude.iter().any(|pat| config::glob_match(pat, p)));

    // Phase 1: scan and index every file, then resolve the workspace-wide
    // seed-derivation set by fixpoint (a helper in crates/graph that
    // wraps `splitmix64` must count as a derivation in crates/sim too).
    let mut scanned: Vec<(String, ScannedFile, FileIndex)> = Vec::new();
    for rel in &paths {
        let text = fs::read_to_string(root.join(rel))?;
        let file = scan(&text);
        let idx = index::index_file(&file);
        scanned.push((rel.clone(), file, idx));
    }
    let indexes: Vec<&FileIndex> = scanned.iter().map(|(_, _, i)| i).collect();
    let roots = cfg.rule(RuleId::RngDiscipline).derivation_roots;
    let derivation = index::derivation_fixpoint(&indexes, &roots);

    // Phase 2: run the rule families per file against the shared context.
    let mut findings = Vec::new();
    let mut waivers_honored = 0usize;
    for (rel, file, idx) in &scanned {
        let (mut file_findings, honored) =
            rules::lint_file_indexed(rel, file, idx, &derivation, cfg);
        findings.append(&mut file_findings);
        waivers_honored += honored;
    }

    let audit_files: Vec<(String, &ScannedFile, &FileIndex)> = scanned
        .iter()
        .filter(|(p, _, _)| cfg.applies(RuleId::UnsafeAudit, p))
        .map(|(p, f, i)| (p.clone(), f, i))
        .collect();
    let hints = cfg.rule(RuleId::BoundsProvenance).bound_hints;
    let inventory = inventory::render(&audit_files, &hints);

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(Report {
        findings,
        files_scanned: paths.len(),
        waivers_honored,
        inventory,
    })
}

/// Recursively collect `.rs` files under `root/dir` as workspace-relative
/// `/`-separated paths. A missing source root is not an error (the
/// config lists optional roots like `examples`).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&abs)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &dir.join(name), out)?;
        } else if name.ends_with(".rs") {
            let rel = dir.join(name);
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Load the `lint.toml` at `root`.
pub fn load_config(root: &Path) -> io::Result<Config> {
    let text = fs::read_to_string(root.join("lint.toml"))?;
    Config::from_toml_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}
