//! `ag-lint` — the workspace's static-analysis pass.
//!
//! The repo's central claim is that simulation runs are a *pure function
//! of the seed*: bit-identical across shard counts, thread counts and
//! reruns. Runtime tests (golden pins, differential suites) defend that
//! claim after the fact; this crate defends it *statically*, because the
//! bug classes that break it are lexically recognizable:
//!
//! * iteration over hash-ordered collections (the exact latent bug PR 1
//!   fixed in `RandomMessageGossip`, where `HashSet` iteration order
//!   leaked into message picks),
//! * wall-clock and environment reads inside the simulation stack,
//! * truncating casts in seed-mixing/RNG-keying code.
//!
//! Two more families turn implicit repo policy into checked policy: every
//! `unsafe` site must carry a `// SAFETY:` justification (and is listed
//! in a committed, drift-checked `UNSAFE_INVENTORY.md`), and library code
//! must not `unwrap`/`panic!` — `.expect("invariant")` with a real
//! message, typed errors, or an explicit waiver are the only outs.
//!
//! Everything is pure `std` (the container is offline), driven by a
//! lightweight lexer/line scanner — no `syn`, no type information. The
//! rules, their per-crate scopes and the waiver syntax live in the root
//! `lint.toml`; see the README's static-analysis section for the rule
//! table and `crates/lint/fixtures/` for known-good/known-bad examples
//! every rule family is self-tested against.

pub mod config;
pub mod inventory;
pub mod rules;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use rules::{Finding, RuleId};
use scan::{scan, ScannedFile};

/// Result of linting a workspace.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_honored: usize,
    /// Rendered `UNSAFE_INVENTORY.md` content for this tree.
    pub inventory: String,
}

/// Run the whole pass over the workspace rooted at `root`.
pub fn run(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut paths: Vec<String> = Vec::new();
    for src_root in &cfg.source_roots {
        collect_rs_files(root, Path::new(src_root), &mut paths)?;
    }
    paths.sort();
    paths.dedup();
    paths.retain(|p| !cfg.exclude.iter().any(|pat| config::glob_match(pat, p)));

    let mut findings = Vec::new();
    let mut waivers_honored = 0usize;
    let mut scanned: Vec<(String, ScannedFile)> = Vec::new();
    for rel in &paths {
        let text = fs::read_to_string(root.join(rel))?;
        let file = scan(&text);
        let (mut file_findings, honored) = rules::lint_file(rel, &file, cfg);
        findings.append(&mut file_findings);
        waivers_honored += honored;
        scanned.push((rel.clone(), file));
    }

    let audit_files: Vec<(String, &ScannedFile)> = scanned
        .iter()
        .filter(|(p, _)| cfg.applies(RuleId::UnsafeAudit, p))
        .map(|(p, f)| (p.clone(), f))
        .collect();
    let inventory = inventory::render(&audit_files);

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(Report {
        findings,
        files_scanned: paths.len(),
        waivers_honored,
        inventory,
    })
}

/// Recursively collect `.rs` files under `root/dir` as workspace-relative
/// `/`-separated paths. A missing source root is not an error (the
/// config lists optional roots like `examples`).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&abs)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &dir.join(name), out)?;
        } else if name.ends_with(".rs") {
            let rel = dir.join(name);
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Load the `lint.toml` at `root`.
pub fn load_config(root: &Path) -> io::Result<Config> {
    let text = fs::read_to_string(root.join("lint.toml"))?;
    Config::from_toml_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}
