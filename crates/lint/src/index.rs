//! Phase 1 of the two-phase analyzer: a per-file symbol/region index.
//!
//! The original rule families were pure line scanners; the cross-file
//! families added in v2 (`rng-discipline`, `alloc-discipline`,
//! `bounds-provenance`) need to know *where they are*: which function a
//! line belongs to, which functions/regions carry an
//! `// ag-lint: hot-path` annotation, which spans are inside `unsafe`,
//! and which functions each body calls (so seed-derivation helpers can be
//! resolved transitively across files). This module builds that index
//! from the [`crate::scan::ScannedFile`] alone — brace-depth structure,
//! no type information — and phase 2 ([`crate::rules`]) consumes it.
//!
//! Annotation grammar (plain `//` comments only, never doc text):
//!
//! * `// ag-lint: hot-path` directly above a `fn` marks its whole body as
//!   an allocation-free zone.
//! * `// ag-lint: hot-path(begin)` / `// ag-lint: hot-path(end)` bracket
//!   a region inside a larger function (e.g. the engine's round loop).
//! * `// ag-lint: sharded-phase(begin)` / `(end)` bracket a sharded
//!   compose/merge phase: inside it, only RNGs *bound inside the region*
//!   (i.e. constructed from the per-slot key) may be mentioned.

use std::collections::BTreeSet;

use crate::scan::{is_ident_char, ScannedFile};

/// An inclusive 0-based line span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    #[must_use]
    pub fn contains(self, line: usize) -> bool {
        self.start <= line && line <= self.end
    }
}

/// One function with a body in this file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Body span: the line holding the opening `{` through the line
    /// holding its matching `}`.
    pub body: Span,
    /// Declared `unsafe fn`? (The body is then an unsafe span.)
    pub is_unsafe: bool,
    /// Carries an `// ag-lint: hot-path` annotation?
    pub hot_path: bool,
    /// Names called as `name(…)` anywhere in the body (methods and free
    /// functions alike) — the raw material for the cross-file
    /// seed-derivation fixpoint.
    pub calls: BTreeSet<String>,
}

/// One `unsafe` span: a block, or the body of an `unsafe fn`.
#[derive(Debug, Clone, Copy)]
pub struct UnsafeSpan {
    /// 0-based line of the `unsafe` keyword — matches the 1-based
    /// `line - 1` of the corresponding [`crate::rules::UnsafeSite`].
    pub kw_line: usize,
    /// The braced span the keyword governs.
    pub body: Span,
}

/// The per-file index.
#[derive(Debug, Default)]
pub struct FileIndex {
    pub fns: Vec<FnSpan>,
    /// `hot-path(begin)`/`(end)` regions, in source order.
    pub hot_regions: Vec<Span>,
    /// `sharded-phase(begin)`/`(end)` regions, in source order.
    pub sharded_regions: Vec<Span>,
    /// `unsafe` blocks and `unsafe fn` bodies.
    pub unsafe_spans: Vec<UnsafeSpan>,
}

impl FileIndex {
    /// The innermost function whose body (or signature) covers `line`.
    #[must_use]
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.sig_line <= line && line <= f.body.end)
            .min_by_key(|f| f.body.end - f.sig_line)
    }

    /// Every hot span: annotated function bodies plus explicit regions.
    #[must_use]
    pub fn hot_spans(&self) -> Vec<Span> {
        let mut out: Vec<Span> = self
            .fns
            .iter()
            .filter(|f| f.hot_path)
            .map(|f| Span {
                start: f.sig_line,
                end: f.body.end,
            })
            .collect();
        out.extend(self.hot_regions.iter().copied());
        out
    }
}

/// Marker names recognized after `ag-lint:` besides `allow(…)` waivers.
pub const ANNOTATION_HOT: &str = "hot-path";
pub const ANNOTATION_SHARDED: &str = "sharded-phase";

/// What an `ag-lint: <marker>` annotation says, if the comment holds one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Annotation {
    HotFn,
    HotBegin,
    HotEnd,
    ShardedBegin,
    ShardedEnd,
}

/// Parse the text following `ag-lint:` as an annotation (not a waiver).
/// Returns `None` when the text is not a recognized annotation — the
/// waiver parser then decides whether it is an `allow(…)` or malformed.
#[must_use]
pub fn parse_annotation(text: &str) -> Option<Annotation> {
    let text = text.trim_start();
    if let Some(rest) = text.strip_prefix(ANNOTATION_HOT) {
        let rest = rest.trim_start();
        if let Some(arg) = rest.strip_prefix("(begin)") {
            return arg_terminates(arg).then_some(Annotation::HotBegin);
        }
        if let Some(arg) = rest.strip_prefix("(end)") {
            return arg_terminates(arg).then_some(Annotation::HotEnd);
        }
        return arg_terminates(rest).then_some(Annotation::HotFn);
    }
    if let Some(rest) = text.strip_prefix(ANNOTATION_SHARDED) {
        let rest = rest.trim_start();
        if let Some(arg) = rest.strip_prefix("(begin)") {
            return arg_terminates(arg).then_some(Annotation::ShardedBegin);
        }
        if let Some(arg) = rest.strip_prefix("(end)") {
            return arg_terminates(arg).then_some(Annotation::ShardedEnd);
        }
    }
    None
}

/// After the marker, only an optional `— explanation` may follow.
fn arg_terminates(rest: &str) -> bool {
    let rest = rest.trim_start();
    rest.is_empty() || rest.starts_with(['—', '–', '-'])
}

/// Annotations in one plain-comment string.
fn annotations_in(comment: &str) -> Vec<Annotation> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("ag-lint:") {
        rest = &rest[pos + "ag-lint:".len()..];
        if let Some(a) = parse_annotation(rest) {
            out.push(a);
        }
    }
    out
}

/// Build the index for one scanned file.
#[must_use]
pub fn index_file(file: &ScannedFile) -> FileIndex {
    let mut idx = FileIndex::default();

    // Region annotations: pair begins with ends in source order. An
    // unmatched begin extends to end-of-file (safer to over-cover than to
    // silently drop the region).
    let mut hot_open: Option<usize> = None;
    let mut sharded_open: Option<usize> = None;
    for (i, line) in file.lines.iter().enumerate() {
        for a in annotations_in(&line.plain_comment) {
            match a {
                Annotation::HotBegin => hot_open = hot_open.or(Some(i)),
                Annotation::HotEnd => {
                    if let Some(start) = hot_open.take() {
                        idx.hot_regions.push(Span { start, end: i });
                    }
                }
                Annotation::ShardedBegin => sharded_open = sharded_open.or(Some(i)),
                Annotation::ShardedEnd => {
                    if let Some(start) = sharded_open.take() {
                        idx.sharded_regions.push(Span { start, end: i });
                    }
                }
                Annotation::HotFn => {}
            }
        }
    }
    let eof = file.lines.len().saturating_sub(1);
    if let Some(start) = hot_open {
        idx.hot_regions.push(Span { start, end: eof });
    }
    if let Some(start) = sharded_open {
        idx.sharded_regions.push(Span { start, end: eof });
    }

    // Function and unsafe-span structure: one brace-depth walk.
    let mut depth: i64 = 0;
    // (name, sig_line, is_unsafe) awaiting its opening brace.
    let mut pending_fn: Option<(String, usize, bool)> = None;
    // Was the previous token on this walk `unsafe` with no item keyword
    // after it (i.e. an `unsafe { … }` block, brace possibly on the next
    // line)?
    let mut pending_unsafe_block: Option<usize> = None;
    // Open fn bodies: (partial FnSpan, depth of their opening brace).
    let mut open_fns: Vec<(FnSpan, i64)> = Vec::new();
    // Open unsafe blocks: (kw_line, open_line, depth).
    let mut open_unsafe: Vec<(usize, usize, i64)> = Vec::new();
    // Paren/bracket depth so `;` inside `fn f(x: [u8; 32])` does not
    // cancel the pending fn.
    let mut nest: i64 = 0;

    for (i, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let chars: Vec<char> = code.chars().collect();
        let mut c = 0usize;
        while c < chars.len() {
            let ch = chars[c];
            if is_ident_char(ch) {
                let start = c;
                while c < chars.len() && is_ident_char(chars[c]) {
                    c += 1;
                }
                let word: String = chars[start..c].iter().collect();
                let prev_ok = start == 0 || !is_ident_char(chars[start - 1]);
                if !prev_ok {
                    continue;
                }
                match word.as_str() {
                    "fn" => {
                        // A `fn` followed by an identifier starts a
                        // declaration; `fn(` in type position does not.
                        let mut j = c;
                        while j < chars.len() && chars[j].is_whitespace() {
                            j += 1;
                        }
                        let mut name = String::new();
                        while j < chars.len() && is_ident_char(chars[j]) {
                            name.push(chars[j]);
                            j += 1;
                        }
                        if !name.is_empty() {
                            let was_unsafe = pending_unsafe_block.take().is_some();
                            pending_fn = Some((name, i, was_unsafe));
                        }
                    }
                    "unsafe" => {
                        // Peek: `unsafe fn/impl/trait` are handled as
                        // items; anything else is a block.
                        let rest: String = chars[c..].iter().collect();
                        let rest = rest.trim_start();
                        if !rest.starts_with("impl") && !rest.starts_with("trait") {
                            pending_unsafe_block = Some(i);
                        }
                    }
                    _ => {
                        // A call site `name(`: record into every open fn
                        // (the innermost is what matters, but recording
                        // into all is harmless for the fixpoint).
                        let mut j = c;
                        while j < chars.len() && chars[j].is_whitespace() {
                            j += 1;
                        }
                        let turbofish =
                            chars.get(j) == Some(&':') && chars.get(j + 1) == Some(&':');
                        if chars.get(j) == Some(&'(') || turbofish {
                            for (f, _) in &mut open_fns {
                                f.calls.insert(word.clone());
                            }
                        }
                    }
                }
                continue;
            }
            match ch {
                '(' | '[' => nest += 1,
                ')' | ']' => nest -= 1,
                ';' if nest == 0 => {
                    pending_fn = None;
                    pending_unsafe_block = None;
                }
                '{' => {
                    depth += 1;
                    if let Some((name, sig_line, is_unsafe)) = pending_fn.take() {
                        pending_unsafe_block = None;
                        open_fns.push((
                            FnSpan {
                                name,
                                sig_line,
                                body: Span { start: i, end: i },
                                is_unsafe,
                                hot_path: false,
                                calls: BTreeSet::new(),
                            },
                            depth,
                        ));
                    } else if let Some(kw) = pending_unsafe_block.take() {
                        open_unsafe.push((kw, i, depth));
                    }
                    nest = 0;
                }
                '}' => {
                    if let Some((f, d)) = open_fns.last() {
                        if *d == depth {
                            let mut f = f.clone();
                            f.body.end = i;
                            if f.is_unsafe {
                                idx.unsafe_spans.push(UnsafeSpan {
                                    kw_line: f.sig_line,
                                    body: f.body,
                                });
                            }
                            idx.fns.push(f);
                            open_fns.pop();
                        }
                    }
                    if let Some((kw, open, d)) = open_unsafe.last().copied() {
                        if d == depth {
                            idx.unsafe_spans.push(UnsafeSpan {
                                kw_line: kw,
                                body: Span {
                                    start: open,
                                    end: i,
                                },
                            });
                            open_unsafe.pop();
                        }
                    }
                    depth -= 1;
                }
                _ => {}
            }
            c += 1;
        }
    }
    // Unclosed bodies (truncated input): close at end of file.
    for (mut f, _) in open_fns {
        f.body.end = eof;
        if f.is_unsafe {
            idx.unsafe_spans.push(UnsafeSpan {
                kw_line: f.sig_line,
                body: f.body,
            });
        }
        idx.fns.push(f);
    }
    for (kw, open, _) in open_unsafe {
        idx.unsafe_spans.push(UnsafeSpan {
            kw_line: kw,
            body: Span {
                start: open,
                end: eof,
            },
        });
    }
    idx.fns.sort_by_key(|f| f.sig_line);
    idx.unsafe_spans.sort_by_key(|u| u.kw_line);

    // `hot-path` fn annotations: on the signature line, or on directly
    // preceding comment-only / attribute-only lines (same lookback rule
    // as waivers and SAFETY comments).
    for f in &mut idx.fns {
        f.hot_path = fn_has_hot_annotation(file, f.sig_line);
    }

    idx
}

/// Resolve the workspace-wide set of seed-derivation functions by
/// fixpoint: start from the configured roots (`splitmix64`), then add any
/// function whose body calls a function already in the set, until stable.
/// Deliberately over-approximate in the safe direction — a helper that
/// merely *touches* the derivation chain counts as keyed, so the rule
/// errs toward fewer false positives.
#[must_use]
pub fn derivation_fixpoint(indexes: &[&FileIndex], roots: &[String]) -> BTreeSet<String> {
    let mut set: BTreeSet<String> = roots.iter().cloned().collect();
    loop {
        let mut changed = false;
        for idx in indexes {
            for f in &idx.fns {
                if !set.contains(&f.name) && f.calls.iter().any(|c| set.contains(c)) {
                    set.insert(f.name.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            return set;
        }
    }
}

fn fn_has_hot_annotation(file: &ScannedFile, sig_line: usize) -> bool {
    let holds =
        |i: usize| annotations_in(&file.lines[i].plain_comment).contains(&Annotation::HotFn);
    if holds(sig_line) {
        return true;
    }
    let mut i = sig_line;
    while i > 0 {
        i -= 1;
        let line = &file.lines[i];
        if line.has_code() && !line.is_attr_only() {
            return false;
        }
        if holds(i) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn fn_spans_and_calls_are_indexed() {
        let src = concat!(
            "pub fn outer(x: [u8; 4]) -> u64 {\n",
            "    let k = splitmix64(x[0] as u64);\n",
            "    inner(k)\n",
            "}\n",
            "fn inner(k: u64) -> u64 { k }\n",
        );
        let idx = index_file(&scan(src));
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].name, "outer");
        assert_eq!(idx.fns[0].body, Span { start: 0, end: 3 });
        assert!(idx.fns[0].calls.contains("splitmix64"));
        assert!(idx.fns[0].calls.contains("inner"));
        assert_eq!(idx.fns[1].name, "inner");
    }

    #[test]
    fn bodyless_decls_and_fn_types_are_not_fns() {
        let src = concat!(
            "trait T { fn required(&self) -> u8; }\n",
            "type Hook = fn(u8) -> u8;\n",
            "fn real() { body(); }\n",
        );
        let idx = index_file(&scan(src));
        // The trait's braces open no fn body; only `real` has one.
        let names: Vec<&str> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn hot_path_annotations_mark_fns_and_regions() {
        let src = concat!(
            "// ag-lint: hot-path\n",
            "fn hot() { work(); }\n",
            "fn cold() {\n",
            "    setup();\n",
            "    // ag-lint: hot-path(begin)\n",
            "    inner_loop();\n",
            "    // ag-lint: hot-path(end)\n",
            "}\n",
        );
        let idx = index_file(&scan(src));
        assert!(idx.fns.iter().any(|f| f.name == "hot" && f.hot_path));
        assert!(idx.fns.iter().any(|f| f.name == "cold" && !f.hot_path));
        assert_eq!(idx.hot_regions, vec![Span { start: 4, end: 6 }]);
    }

    #[test]
    fn unsafe_blocks_and_unsafe_fns_become_spans() {
        let src = concat!(
            "fn f(p: *const u8) -> u8 {\n",
            "    unsafe { *p }\n",
            "}\n",
            "unsafe fn g(p: *const u8) -> u8 {\n",
            "    *p\n",
            "}\n",
            "unsafe impl Send for X {}\n",
        );
        let idx = index_file(&scan(src));
        assert_eq!(idx.unsafe_spans.len(), 2, "{:?}", idx.unsafe_spans);
        assert_eq!(idx.unsafe_spans[0].kw_line, 1);
        assert_eq!(idx.unsafe_spans[1].kw_line, 3);
        assert_eq!(idx.unsafe_spans[1].body, Span { start: 3, end: 5 });
    }

    #[test]
    fn sharded_regions_pair_and_unmatched_begin_extends_to_eof() {
        let src = concat!(
            "// ag-lint: sharded-phase(begin)\n",
            "a();\n",
            "// ag-lint: sharded-phase(end)\n",
            "// ag-lint: hot-path(begin) — never closed\n",
            "b();\n",
        );
        let idx = index_file(&scan(src));
        assert_eq!(idx.sharded_regions, vec![Span { start: 0, end: 2 }]);
        assert_eq!(idx.hot_regions, vec![Span { start: 3, end: 4 }]);
    }

    #[test]
    fn derivation_fixpoint_resolves_transitive_helpers() {
        let a = index_file(&scan(concat!(
            "pub fn derive_key(seed: u64, i: u64) -> u64 {\n",
            "    splitmix64(seed ^ i)\n",
            "}\n",
        )));
        let b = index_file(&scan(concat!(
            "pub fn cell_key(seed: u64, r: u64, s: u64) -> u64 {\n",
            "    derive_key(seed, r ^ s)\n",
            "}\n",
            "pub fn unrelated() -> u64 { 7 }\n",
        )));
        let set = derivation_fixpoint(&[&a, &b], &["splitmix64".to_owned()]);
        assert!(set.contains("derive_key"));
        assert!(set.contains("cell_key"), "transitive across files");
        assert!(!set.contains("unrelated"));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = concat!(
            "fn outer() {\n",
            "    fn inner() {\n",
            "        x();\n",
            "    }\n",
            "}\n",
        );
        let idx = index_file(&scan(src));
        assert_eq!(idx.enclosing_fn(2).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(idx.enclosing_fn(4).map(|f| f.name.as_str()), Some("outer"));
    }
}
