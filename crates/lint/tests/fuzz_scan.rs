//! Token-soup fuzzing for the scanner → indexer → rules pipeline.
//!
//! The scanner is the soundness root of every rule (a missed string
//! boundary turns doc prose into findings), so it must be *total*:
//! arbitrary concatenations of Rust-ish lexical fragments — unterminated
//! strings, nested comment markers, stray quotes, half-open annotations —
//! must never panic any stage, and the blanking invariants must hold on
//! every input, not just on well-formed Rust.

use proptest::prelude::*;

use ag_lint::config::Config;
use ag_lint::index::index_file;
use ag_lint::rules::lint_file;
use ag_lint::scan::scan;

/// Lexical fragments chosen to collide: comment openers/closers, string
/// and raw-string delimiters, escapes, char-vs-lifetime quotes, braces
/// for the depth tracker, and every marker the indexer reacts to.
const TOKENS: &[&str] = &[
    "fn",
    "f",
    "unsafe",
    "impl",
    "trait",
    "{",
    "}",
    "(",
    ")",
    ";",
    ",",
    "\"",
    "\\\"",
    "\\",
    "r#\"",
    "\"#",
    "r\"",
    "b\"",
    "br#\"",
    "//",
    "///",
    "//!",
    "/*",
    "*/",
    "/**/",
    "'a",
    "'a'",
    "'\\''",
    "'{'",
    "#[cfg(test)]",
    "#[inline]",
    "// ag-lint: hot-path",
    "// ag-lint: hot-path(begin)",
    "// ag-lint: hot-path(end)",
    "// ag-lint: sharded-phase(begin)",
    "// ag-lint: sharded-phase(end)",
    "// ag-lint: allow(panic-policy) — soup",
    "// SAFETY: len is checked",
    ".unwrap()",
    ".push(x)",
    "vec![0]",
    "Vec::new()",
    "seed_from_u64",
    "from_entropy",
    "get_unchecked",
    ".add(1)",
    "let len = xs.len()",
    "let mut rng",
    "splitmix64(seed)",
    // Separators masquerading as tokens keep the generator one-dimensional.
    " ",
    "  ",
    "\n",
    "\n\n",
    "",
];

/// A maximal config: every rule scoped to everything, tests included, so
/// the fuzz input reaches every rule family's code path.
fn permissive_config() -> Config {
    let toml = r#"
version = 1
source_roots = ["."]

[rules.hash-iteration]
scope = ["**"]
include_tests = true

[rules.wall-clock]
scope = ["**"]
include_tests = true

[rules.truncating-cast]
scope = ["**"]
include_tests = true

[rules.unsafe-audit]
scope = ["**"]
include_tests = true

[rules.rng-discipline]
scope = ["**"]
include_tests = true

[rules.alloc-discipline]
scope = ["**"]
include_tests = true

[rules.bounds-provenance]
scope = ["**"]
include_tests = true

[rules.panic-policy]
scope = ["**"]
include_tests = true
"#;
    Config::from_toml_str(toml).expect("fuzz config parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scan_index_lint_are_total_on_token_soup(
        picks in proptest::collection::vec(0..TOKENS.len(), 0..120),
    ) {
        let src: String = picks.iter().map(|&i| TOKENS[i]).collect();
        let file = scan(&src);

        // Line-preserving: one scanned line per input line.
        prop_assert_eq!(file.lines.len(), src.lines().count());

        // Blanking: comment markers never survive into code text (a
        // marker that did would let comment prose trigger rules).
        for line in &file.lines {
            prop_assert!(
                !line.code.contains("//") && !line.code.contains("/*"),
                "comment marker leaked into code: {:?} (src {:?})",
                line.code,
                src
            );
            // Doc text is a subset of comment text by construction.
            prop_assert!(line.comment.len() >= line.plain_comment.len());
        }

        // Deterministic: scanning is a pure function of the source.
        prop_assert_eq!(format!("{:?}", file.lines), format!("{:?}", scan(&src).lines));

        // The indexer is total and its spans stay inside the file.
        let idx = index_file(&file);
        for f in &idx.fns {
            prop_assert!(f.body.start <= f.body.end);
            prop_assert!(f.body.end < file.lines.len().max(1));
        }
        for span in idx.hot_regions.iter().chain(&idx.sharded_regions) {
            prop_assert!(span.start <= span.end);
            prop_assert!(span.end < file.lines.len().max(1));
        }
        for us in &idx.unsafe_spans {
            prop_assert!(us.kw_line < file.lines.len().max(1));
            prop_assert!(us.body.start <= us.body.end);
        }

        // Every rule family survives the soup (findings are fine; panics
        // and non-termination are not).
        let cfg = permissive_config();
        let (_findings, _waivers) = lint_file("soup.rs", &file, &cfg);
    }
}
