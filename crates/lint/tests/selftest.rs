//! Self-tests: every rule family must demonstrably fire on its known-bad
//! fixture (with the right file:line), stay quiet on the known-good one,
//! honor waivers, and skip out-of-scope files — and the tool must exit
//! clean on the real workspace, pinning "the tree passes its own lint"
//! as a test rather than a CI-only property.

use std::path::Path;

use ag_lint::config::Config;
use ag_lint::rules::{lint_file, RuleId};
use ag_lint::scan::scan;

/// Config scoping every rule to `fixtures/**` with self-test defaults.
fn fixture_config(extra: &str) -> Config {
    let toml = format!(
        r#"
version = 1
source_roots = ["fixtures"]

[rules.hash-iteration]
scope = ["fixtures/**"]

[rules.wall-clock]
scope = ["fixtures/**"]

[rules.truncating-cast]
scope = ["fixtures/**"]

[rules.unsafe-audit]
scope = ["fixtures/**"]

[rules.rng-discipline]
scope = ["fixtures/**"]
derivation_roots = ["splitmix64"]

[rules.alloc-discipline]
scope = ["fixtures/**"]
allow_calls = ["scratch.extend_from_slice", "out.resize"]

[rules.bounds-provenance]
scope = ["fixtures/**"]
bound_hints = ["len", "count"]

[rules.panic-policy]
scope = ["fixtures/**"]
{extra}
"#
    );
    Config::from_toml_str(&toml).expect("self-test config parses")
}

fn lint_fixture(name: &str, cfg: &Config) -> Vec<ag_lint::rules::Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let rel = format!("fixtures/{name}");
    lint_file(&rel, &scan(&text), cfg).0
}

fn lines_for(findings: &[ag_lint::rules::Finding], rule: RuleId) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn hash_iteration_fires_on_message_pick_pattern() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_hash_iteration.rs", &cfg);
    let lines = lines_for(&findings, RuleId::HashIteration);
    assert_eq!(lines, vec![15, 21, 29], "iter(), for-loop, retain()");
    assert!(findings
        .iter()
        .all(|f| f.path == "fixtures/bad_hash_iteration.rs"));
}

#[test]
fn keyed_hash_lookup_is_clean() {
    let cfg = fixture_config("");
    let findings = lint_fixture("good_hash_keyed.rs", &cfg);
    assert!(findings.is_empty(), "keyed access must pass: {findings:?}");
}

#[test]
fn wall_clock_fires_on_instant_systemtime_env() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_wall_clock.rs", &cfg);
    let lines = lines_for(&findings, RuleId::WallClock);
    assert_eq!(lines, vec![5, 8, 11], "Instant, SystemTime, env::var");
}

#[test]
fn truncating_cast_fires_but_widening_does_not() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_truncating_cast.rs", &cfg);
    let lines = lines_for(&findings, RuleId::TruncatingCast);
    assert_eq!(
        lines,
        vec![6, 8],
        "as u32 and as u8 only — never as u64/usize"
    );
}

#[test]
fn undocumented_unsafe_fires_and_doc_safety_does_not_count() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_unsafe.rs", &cfg);
    let lines = lines_for(&findings, RuleId::UnsafeAudit);
    assert_eq!(
        lines,
        vec![5, 12],
        "the block, and the fn whose only justification is a doc contract"
    );
}

#[test]
fn safety_comments_satisfy_the_unsafe_audit() {
    let cfg = fixture_config("");
    let findings = lint_fixture("good_unsafe.rs", &cfg);
    assert!(
        findings.is_empty(),
        "documented unsafe must pass: {findings:?}"
    );
}

#[test]
fn panic_policy_fires_honors_waiver_and_skips_tests() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_panic.rs", &cfg);
    let lines = lines_for(&findings, RuleId::PanicPolicy);
    assert_eq!(
        lines,
        vec![6, 12],
        "unwrap and panic! fire; waived unwrap (15), expect (8), \
         indexing (17) and cfg(test) unwrap do not"
    );
}

#[test]
fn allow_expect_false_and_forbid_indexing_tighten_the_policy() {
    let cfg =
        fixture_config("allow_expect = false\nforbid_indexing = true\ninclude_tests = true\n");
    let findings = lint_fixture("bad_panic.rs", &cfg);
    let lines = lines_for(&findings, RuleId::PanicPolicy);
    assert!(lines.contains(&8), "expect fires when allow_expect = false");
    assert!(
        lines.contains(&17),
        "indexing fires when forbid_indexing = true"
    );
    assert!(
        lines.contains(&27),
        "cfg(test) unwrap fires when include_tests = true"
    );
}

#[test]
fn invalid_waivers_are_findings_and_do_not_suppress() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_waiver.rs", &cfg);
    let invalid = lines_for(&findings, RuleId::InvalidWaiver);
    assert_eq!(invalid, vec![5, 7], "reasonless and unknown-rule waivers");
    let panics = lines_for(&findings, RuleId::PanicPolicy);
    assert_eq!(panics, vec![6, 8], "a malformed waiver suppresses nothing");
}

#[test]
fn rng_discipline_fires_on_ambient_literal_unkeyed_and_captured() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_rng.rs", &cfg);
    let lines = lines_for(&findings, RuleId::RngDiscipline);
    assert_eq!(
        lines,
        vec![6, 10, 15, 19, 27],
        "from_entropy, thread_rng, literal seed, unkeyed expression, \
         and the engine RNG captured inside the sharded phase"
    );
}

#[test]
fn seedmix_keyed_rngs_are_clean() {
    let cfg = fixture_config("");
    let findings = lint_fixture("good_rng.rs", &cfg);
    assert!(
        findings.is_empty(),
        "derivation-keyed RNGs must pass: {findings:?}"
    );
}

#[test]
fn alloc_discipline_fires_inside_hot_zones_only() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_hot_alloc.rs", &cfg);
    let lines = lines_for(&findings, RuleId::AllocDiscipline);
    assert_eq!(
        lines,
        vec![7, 8, 9, 10, 22],
        "to_vec, push, vec!, Box::new in the hot fn and Vec::with_capacity \
         in the hot region; the cold fn (15) and the post-region collect \
         (26) stay legal"
    );
}

#[test]
fn scratch_reuse_with_allowlisted_growth_is_clean() {
    let cfg = fixture_config("");
    let findings = lint_fixture("good_hot_alloc.rs", &cfg);
    assert!(
        findings.is_empty(),
        "receiver-pinned allow_calls must suppress: {findings:?}"
    );
}

#[test]
fn bounds_provenance_fires_when_safety_cites_no_bound() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_bounds.rs", &cfg);
    let lines = lines_for(&findings, RuleId::BoundsProvenance);
    assert_eq!(
        lines,
        vec![8, 13],
        "both SAFETY comments exist (unsafe-audit passes) but cite no \
         len/bound identifier from the enclosing scope"
    );
    assert!(
        lines_for(&findings, RuleId::UnsafeAudit).is_empty(),
        "the two rules must not double-report"
    );
}

#[test]
fn cited_bounds_satisfy_provenance() {
    let cfg = fixture_config("");
    let findings = lint_fixture("good_bounds.rs", &cfg);
    assert!(
        findings.is_empty(),
        "cited bounds (and ptr-free spans) must pass: {findings:?}"
    );
}

#[test]
fn unused_waivers_fire_and_live_ones_stay_silent() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_unused_waiver.rs", &cfg);
    let unused = lines_for(&findings, RuleId::UnusedWaiver);
    assert_eq!(
        unused,
        vec![6],
        "the stale waiver fires; the one over the live unwrap does not"
    );
    assert!(
        lines_for(&findings, RuleId::PanicPolicy).is_empty(),
        "the live waiver still suppresses its unwrap"
    );
    assert!(
        lines_for(&findings, RuleId::InvalidWaiver).is_empty(),
        "both waivers are syntactically valid"
    );
}

#[test]
fn out_of_scope_files_are_ignored() {
    let cfg = fixture_config("");
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad_hash_iteration.rs");
    let text = std::fs::read_to_string(path).expect("fixture exists");
    // Same bad content, but under a path no rule scope matches.
    let (findings, _) = lint_file("elsewhere/other.rs", &scan(&text), &cfg);
    assert!(findings.is_empty(), "out of scope: {findings:?}");
}

/// The alloc ban must be live on the real tree, not only on fixtures:
/// injecting an allocation into a really-annotated hot path, under the
/// real `lint.toml`, is caught.
#[test]
fn injected_allocation_in_real_hot_path_is_caught() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf();
    let cfg = ag_lint::load_config(&root).expect("lint.toml parses");
    let rel = "crates/rlnc/src/decoder.rs";
    let text = std::fs::read_to_string(root.join(rel)).expect("decoder source");
    let (clean, _) = lint_file(rel, &scan(&text), &cfg);
    assert!(clean.is_empty(), "pristine decoder must pass: {clean:?}");

    // First statement of the hot-path-annotated receive.
    let needle =
        "pub fn try_receive(&mut self, packet: &Packet<F>) -> Result<Reception, CodingError> {";
    assert!(text.contains(needle), "try_receive signature moved");
    let sabotaged = text.replace(needle, &format!("{needle}\n        self.audit.push(0u8);"));
    let (findings, _) = lint_file(rel, &scan(&sabotaged), &cfg);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == RuleId::AllocDiscipline && f.message.contains("push")),
        "injected Vec::push in a hot path must be caught: {findings:?}"
    );
}

/// The tree must pass its own lint: zero findings and a committed
/// inventory that matches the unsafe sites actually present.
#[test]
fn real_workspace_is_clean_and_inventory_is_current() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf();
    let cfg = ag_lint::load_config(&root).expect("lint.toml parses");
    let report = ag_lint::run(&root, &cfg).expect("lint pass runs");
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean: {:?}",
        report.findings
    );
    let committed = std::fs::read_to_string(root.join(&cfg.inventory_path))
        .expect("UNSAFE_INVENTORY.md is committed");
    assert_eq!(
        committed, report.inventory,
        "UNSAFE_INVENTORY.md drifted — run `cargo run -p ag-lint -- --write-inventory`"
    );
}
