//! Self-tests: every rule family must demonstrably fire on its known-bad
//! fixture (with the right file:line), stay quiet on the known-good one,
//! honor waivers, and skip out-of-scope files — and the tool must exit
//! clean on the real workspace, pinning "the tree passes its own lint"
//! as a test rather than a CI-only property.

use std::path::Path;

use ag_lint::config::Config;
use ag_lint::rules::{lint_file, RuleId};
use ag_lint::scan::scan;

/// Config scoping every rule to `fixtures/**` with self-test defaults.
fn fixture_config(extra: &str) -> Config {
    let toml = format!(
        r#"
version = 1
source_roots = ["fixtures"]

[rules.hash-iteration]
scope = ["fixtures/**"]

[rules.wall-clock]
scope = ["fixtures/**"]

[rules.truncating-cast]
scope = ["fixtures/**"]

[rules.unsafe-audit]
scope = ["fixtures/**"]

[rules.panic-policy]
scope = ["fixtures/**"]
{extra}
"#
    );
    Config::from_toml_str(&toml).expect("self-test config parses")
}

fn lint_fixture(name: &str, cfg: &Config) -> Vec<ag_lint::rules::Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let rel = format!("fixtures/{name}");
    lint_file(&rel, &scan(&text), cfg).0
}

fn lines_for(findings: &[ag_lint::rules::Finding], rule: RuleId) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn hash_iteration_fires_on_message_pick_pattern() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_hash_iteration.rs", &cfg);
    let lines = lines_for(&findings, RuleId::HashIteration);
    assert_eq!(lines, vec![15, 21, 29], "iter(), for-loop, retain()");
    assert!(findings
        .iter()
        .all(|f| f.path == "fixtures/bad_hash_iteration.rs"));
}

#[test]
fn keyed_hash_lookup_is_clean() {
    let cfg = fixture_config("");
    let findings = lint_fixture("good_hash_keyed.rs", &cfg);
    assert!(findings.is_empty(), "keyed access must pass: {findings:?}");
}

#[test]
fn wall_clock_fires_on_instant_systemtime_env() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_wall_clock.rs", &cfg);
    let lines = lines_for(&findings, RuleId::WallClock);
    assert_eq!(lines, vec![5, 8, 11], "Instant, SystemTime, env::var");
}

#[test]
fn truncating_cast_fires_but_widening_does_not() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_truncating_cast.rs", &cfg);
    let lines = lines_for(&findings, RuleId::TruncatingCast);
    assert_eq!(
        lines,
        vec![6, 8],
        "as u32 and as u8 only — never as u64/usize"
    );
}

#[test]
fn undocumented_unsafe_fires_and_doc_safety_does_not_count() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_unsafe.rs", &cfg);
    let lines = lines_for(&findings, RuleId::UnsafeAudit);
    assert_eq!(
        lines,
        vec![5, 12],
        "the block, and the fn whose only justification is a doc contract"
    );
}

#[test]
fn safety_comments_satisfy_the_unsafe_audit() {
    let cfg = fixture_config("");
    let findings = lint_fixture("good_unsafe.rs", &cfg);
    assert!(
        findings.is_empty(),
        "documented unsafe must pass: {findings:?}"
    );
}

#[test]
fn panic_policy_fires_honors_waiver_and_skips_tests() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_panic.rs", &cfg);
    let lines = lines_for(&findings, RuleId::PanicPolicy);
    assert_eq!(
        lines,
        vec![6, 12],
        "unwrap and panic! fire; waived unwrap (15), expect (8), \
         indexing (17) and cfg(test) unwrap do not"
    );
}

#[test]
fn allow_expect_false_and_forbid_indexing_tighten_the_policy() {
    let cfg =
        fixture_config("allow_expect = false\nforbid_indexing = true\ninclude_tests = true\n");
    let findings = lint_fixture("bad_panic.rs", &cfg);
    let lines = lines_for(&findings, RuleId::PanicPolicy);
    assert!(lines.contains(&8), "expect fires when allow_expect = false");
    assert!(
        lines.contains(&17),
        "indexing fires when forbid_indexing = true"
    );
    assert!(
        lines.contains(&27),
        "cfg(test) unwrap fires when include_tests = true"
    );
}

#[test]
fn invalid_waivers_are_findings_and_do_not_suppress() {
    let cfg = fixture_config("");
    let findings = lint_fixture("bad_waiver.rs", &cfg);
    let invalid = lines_for(&findings, RuleId::InvalidWaiver);
    assert_eq!(invalid, vec![5, 7], "reasonless and unknown-rule waivers");
    let panics = lines_for(&findings, RuleId::PanicPolicy);
    assert_eq!(panics, vec![6, 8], "a malformed waiver suppresses nothing");
}

#[test]
fn out_of_scope_files_are_ignored() {
    let cfg = fixture_config("");
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad_hash_iteration.rs");
    let text = std::fs::read_to_string(path).expect("fixture exists");
    // Same bad content, but under a path no rule scope matches.
    let (findings, _) = lint_file("elsewhere/other.rs", &scan(&text), &cfg);
    assert!(findings.is_empty(), "out of scope: {findings:?}");
}

/// The tree must pass its own lint: zero findings and a committed
/// inventory that matches the unsafe sites actually present.
#[test]
fn real_workspace_is_clean_and_inventory_is_current() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint")
        .to_path_buf();
    let cfg = ag_lint::load_config(&root).expect("lint.toml parses");
    let report = ag_lint::run(&root, &cfg).expect("lint pass runs");
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean: {:?}",
        report.findings
    );
    let committed = std::fs::read_to_string(root.join(&cfg.inventory_path))
        .expect("UNSAFE_INVENTORY.md is committed");
    assert_eq!(
        committed, report.inventory,
        "UNSAFE_INVENTORY.md drifted — run `cargo run -p ag-lint -- --write-inventory`"
    );
}
