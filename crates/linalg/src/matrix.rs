//! Dense row-major matrices over a finite field.

use std::error::Error;
use std::fmt;

use ag_gf::Field;
use rand::Rng;

/// Error returned when matrix dimensions do not line up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    detail: String,
}

impl ShapeError {
    fn new(detail: impl Into<String>) -> Self {
        ShapeError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix shape mismatch: {}", self.detail)
    }
}

impl Error for ShapeError {}

/// A dense matrix over the field `F`, stored row-major.
///
/// This is the node-state representation of the paper: each row is one
/// stored linear equation over the k unknown messages (possibly augmented
/// with payload symbols). Sizes in gossip simulations are small (k ≤ a few
/// thousand), so a flat dense layout beats anything sparse.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf256};
/// use ag_linalg::Matrix;
///
/// let id = Matrix::<Gf256>::identity(3);
/// assert_eq!(id.rank(), 3);
/// assert!(id.is_identity());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, F::ONE);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Result<Self, ShapeError> {
        let ncols = rows.first().map_or(0, Vec::len);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(ShapeError::new(format!(
                    "row 0 has {ncols} columns but row {i} has {}",
                    r.len()
                )));
            }
        }
        let nrows = rows.len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// A matrix with entries drawn uniformly at random.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| F::random(rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// The entry at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> F {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the entry at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: F) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[F] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[F]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Matrix × vector product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `v.len() != self.ncols()`.
    pub fn matvec(&self, v: &[F]) -> Result<Vec<F>, ShapeError> {
        if v.len() != self.cols {
            return Err(ShapeError::new(format!(
                "matvec: {} columns vs vector of length {}",
                self.cols,
                v.len()
            )));
        }
        Ok(self.rows_iter().map(|row| dot(row, v)).collect())
    }

    /// Matrix × matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.ncols() != rhs.nrows()`.
    pub fn matmul(&self, rhs: &Matrix<F>) -> Result<Matrix<F>, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new(format!(
                "matmul: lhs is {}x{}, rhs is {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * rhs.get(l, j));
                }
            }
        }
        Ok(out)
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix<F> {
        let mut out = Matrix::zero(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// True if the matrix is square and equal to the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                let want = if i == j { F::ONE } else { F::ZERO };
                if self.get(i, j) != want {
                    return false;
                }
            }
        }
        true
    }

    /// In-place reduction to *reduced row echelon form*; returns the rank.
    pub fn rref(&mut self) -> usize {
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row == self.rows {
                break;
            }
            // Find a nonzero pivot in this column at or below pivot_row.
            let Some(src) = (pivot_row..self.rows).find(|&r| !self.get(r, col).is_zero()) else {
                continue;
            };
            self.swap_rows(pivot_row, src);
            // Normalize the pivot row.
            let p = self.get(pivot_row, col);
            let pinv = p.inv().expect("pivot is nonzero");
            self.scale_row(pivot_row, pinv);
            // Eliminate the column everywhere else.
            for r in 0..self.rows {
                if r != pivot_row {
                    let factor = self.get(r, col);
                    if !factor.is_zero() {
                        self.row_axpy(r, pivot_row, factor);
                    }
                }
            }
            pivot_row += 1;
        }
        pivot_row
    }

    /// The rank, computed on a scratch copy.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.clone().rref()
    }

    /// The inverse of a square matrix, or `None` if singular.
    #[must_use]
    pub fn inverse(&self) -> Option<Matrix<F>> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        // Augment [self | I] and reduce.
        let mut aug = Matrix::zero(n, 2 * n);
        for i in 0..n {
            for j in 0..n {
                aug.set(i, j, self.get(i, j));
            }
            aug.set(i, n + i, F::ONE);
        }
        aug.rref();
        // `self` is invertible iff the left block reduced to the identity.
        // (The rank of the *augmented* matrix is always n, so it proves
        // nothing on its own.)
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { F::ONE } else { F::ZERO };
                if aug.get(i, j) != want {
                    return None;
                }
            }
        }
        let mut out = Matrix::zero(n, n);
        for i in 0..n {
            for j in 0..n {
                out.set(i, j, aug.get(i, n + j));
            }
        }
        Some(out)
    }

    /// Solves `self · x = b` for square, full-rank `self`.
    ///
    /// Returns `None` when the system is singular (or inconsistent).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `b.len() != self.nrows()`.
    pub fn solve(&self, b: &[F]) -> Result<Option<Vec<F>>, ShapeError> {
        if b.len() != self.rows {
            return Err(ShapeError::new(format!(
                "solve: matrix has {} rows, b has {}",
                self.rows,
                b.len()
            )));
        }
        if self.rows != self.cols {
            return Err(ShapeError::new("solve requires a square matrix"));
        }
        let n = self.rows;
        let mut aug = Matrix::zero(n, n + 1);
        for (i, &rhs) in b.iter().enumerate() {
            for j in 0..n {
                aug.set(i, j, self.get(i, j));
            }
            aug.set(i, n, rhs);
        }
        aug.rref();
        // Solvable (uniquely) iff the left block reduced to the identity;
        // otherwise the system is singular or a pivot landed in column n
        // (inconsistent).
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { F::ONE } else { F::ZERO };
                if aug.get(i, j) != want {
                    return Ok(None);
                }
            }
        }
        Ok(Some((0..n).map(|i| aug.get(i, n)).collect()))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (first, second) = self.data.split_at_mut(b * self.cols);
        first[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut second[..self.cols]);
    }

    fn scale_row(&mut self, r: usize, factor: F) {
        for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
            *v *= factor;
        }
    }

    /// `row[dst] -= factor * row[src]`.
    fn row_axpy(&mut self, dst: usize, src: usize, factor: F) {
        for c in 0..self.cols {
            let s = self.get(src, c);
            let d = self.get(dst, c);
            self.set(dst, c, d - factor * s);
        }
    }
}

impl<F: Field> fmt::Display for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:?}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
pub(crate) fn dot<F: Field>(xs: &[F], ys: &[F]) -> F {
    debug_assert_eq!(xs.len(), ys.len());
    xs.iter().zip(ys).fold(F::ZERO, |acc, (&x, &y)| acc + x * y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Gf2, Gf256, F257};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_properties() {
        let id = Matrix::<Gf256>::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.rank(), 4);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(vec![
            vec![Gf256::new(1)],
            vec![Gf256::new(1), Gf256::new(2)],
        ])
        .unwrap_err();
        assert!(err.to_string().contains("row 1 has 2"));
    }

    #[test]
    fn rref_known_example_f257() {
        // [1 2; 3 4] over F257 has rank 2.
        let mut m = Matrix::from_rows(vec![
            vec![F257::from_u64(1), F257::from_u64(2)],
            vec![F257::from_u64(3), F257::from_u64(4)],
        ])
        .unwrap();
        assert_eq!(m.rref(), 2);
        assert!(m.is_identity());
    }

    #[test]
    fn rank_deficient_detected() {
        // Second row is 2x the first over F257.
        let m = Matrix::from_rows(vec![
            vec![F257::from_u64(1), F257::from_u64(2)],
            vec![F257::from_u64(2), F257::from_u64(4)],
        ])
        .unwrap();
        assert_eq!(m.rank(), 1);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn inverse_round_trip_random() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut found_invertible = 0;
        for _ in 0..20 {
            let m = Matrix::<Gf256>::random(5, 5, &mut rng);
            if let Some(inv) = m.inverse() {
                found_invertible += 1;
                assert!(m.matmul(&inv).unwrap().is_identity());
                assert!(inv.matmul(&m).unwrap().is_identity());
            }
        }
        // Over GF(256) a random 5x5 matrix is invertible w.p. ~0.996.
        assert!(found_invertible >= 15);
    }

    #[test]
    fn solve_round_trip() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let m = Matrix::<F257>::random(6, 6, &mut rng);
            if m.rank() < 6 {
                continue;
            }
            let x: Vec<F257> = (0..6).map(|i| F257::from_u64(i as u64 + 3)).collect();
            let b = m.matvec(&x).unwrap();
            let solved = m.solve(&b).unwrap().expect("full rank");
            assert_eq!(solved, x);
        }
    }

    #[test]
    fn solve_singular_returns_none() {
        let m = Matrix::from_rows(vec![
            vec![Gf256::new(1), Gf256::new(1)],
            vec![Gf256::new(1), Gf256::new(1)],
        ])
        .unwrap();
        let b = vec![Gf256::new(1), Gf256::new(2)];
        assert_eq!(m.solve(&b).unwrap(), None);
    }

    #[test]
    fn matvec_shape_error() {
        let m = Matrix::<Gf256>::identity(3);
        assert!(m.matvec(&[Gf256::ONE]).is_err());
    }

    #[test]
    fn matmul_associative_spot_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::<Gf256>::random(3, 4, &mut rng);
        let b = Matrix::<Gf256>::random(4, 2, &mut rng);
        let c = Matrix::<Gf256>::random(2, 5, &mut rng);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert_eq!(left, right);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = Matrix::<Gf2>::random(4, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn rank_bounded_by_dims_gf2() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let m = Matrix::<Gf2>::random(5, 9, &mut rng);
            assert!(m.rank() <= 5);
        }
    }

    #[test]
    fn display_renders_rows() {
        let m = Matrix::<Gf2>::identity(2);
        let s = m.to_string();
        assert!(s.lines().count() == 2);
    }
}
