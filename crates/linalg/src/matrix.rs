//! Dense row-major matrices over a finite field, stored as packed slabs.

use std::error::Error;
use std::fmt;
use std::marker::PhantomData;

use ag_gf::SlabField;
use rand::Rng;

/// Error returned when matrix dimensions do not line up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    detail: String,
}

impl ShapeError {
    fn new(detail: impl Into<String>) -> Self {
        ShapeError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix shape mismatch: {}", self.detail)
    }
}

impl Error for ShapeError {}

/// A dense matrix over the field `F`, stored row-major as one contiguous
/// packed byte slab (see [`ag_gf::slab`]).
///
/// This is the node-state representation of the paper: each row is one
/// stored linear equation over the k unknown messages (possibly augmented
/// with payload symbols). Sizes in gossip simulations are small (k ≤ a few
/// thousand), so a flat dense layout beats anything sparse — and the packed
/// layout lets row reduction ([`Matrix::rref`]) and multiplication
/// ([`Matrix::matmul`]) run on the [`SlabField`] bulk kernels.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf256};
/// use ag_linalg::Matrix;
///
/// let id = Matrix::<Gf256>::identity(3);
/// assert_eq!(id.rank(), 3);
/// assert!(id.is_identity());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    /// `rows * cols * F::SYMBOL_BYTES` packed bytes; row `r` occupies
    /// `data[r * row_bytes .. (r + 1) * row_bytes]`.
    data: Vec<u8>,
    _field: PhantomData<F>,
}

impl<F: SlabField> Matrix<F> {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0u8; rows * cols * F::SYMBOL_BYTES],
            _field: PhantomData,
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, F::ONE);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Result<Self, ShapeError> {
        let ncols = rows.first().map_or(0, Vec::len);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(ShapeError::new(format!(
                    "row 0 has {ncols} columns but row {i} has {}",
                    r.len()
                )));
            }
        }
        let nrows = rows.len();
        let mut data = Vec::with_capacity(nrows * ncols * F::SYMBOL_BYTES);
        for r in &rows {
            F::pack_into(r, &mut data);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
            _field: PhantomData,
        })
    }

    /// A matrix with entries drawn uniformly at random.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for chunk in m.data.chunks_exact_mut(F::SYMBOL_BYTES) {
            F::random(rng).write_symbol(chunk);
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Bytes per packed row.
    fn row_bytes(&self) -> usize {
        self.cols * F::SYMBOL_BYTES
    }

    /// The entry at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> F {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        F::read_symbol(&self.data[(r * self.cols + c) * F::SYMBOL_BYTES..])
    }

    /// Sets the entry at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: F) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        v.write_symbol(&mut self.data[(r * self.cols + c) * F::SYMBOL_BYTES..]);
    }

    /// Row `r` as a packed byte slab.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn packed_row(&self, r: usize) -> &[u8] {
        assert!(r < self.rows, "row out of bounds");
        let rb = self.row_bytes();
        &self.data[r * rb..(r + 1) * rb]
    }

    /// Row `r` decoded to field elements.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> Vec<F> {
        F::unpack(self.packed_row(r))
    }

    /// Iterates over the rows as packed byte slabs.
    pub fn packed_rows(&self) -> impl Iterator<Item = &[u8]> {
        self.data
            .chunks_exact(self.row_bytes().max(1))
            .take(self.rows)
    }

    /// Matrix × vector product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `v.len() != self.ncols()`.
    pub fn matvec(&self, v: &[F]) -> Result<Vec<F>, ShapeError> {
        if v.len() != self.cols {
            return Err(ShapeError::new(format!(
                "matvec: {} columns vs vector of length {}",
                self.cols,
                v.len()
            )));
        }
        Ok(self
            .packed_rows()
            .map(|row| {
                row.chunks_exact(F::SYMBOL_BYTES)
                    .zip(v)
                    .fold(F::ZERO, |acc, (chunk, &x)| acc + F::read_symbol(chunk) * x)
            })
            .collect())
    }

    /// Matrix × matrix product, accumulated row-by-row with the slab axpy
    /// kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.ncols() != rhs.nrows()`.
    pub fn matmul(&self, rhs: &Matrix<F>) -> Result<Matrix<F>, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new(format!(
                "matmul: lhs is {}x{}, rhs is {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        let out_rb = out.row_bytes();
        for i in 0..self.rows {
            let dst = &mut out.data[i * out_rb..(i + 1) * out_rb];
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a.is_zero() {
                    continue;
                }
                F::mul_add_slice(a, rhs.packed_row(l), dst);
            }
        }
        Ok(out)
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix<F> {
        let mut out = Matrix::zero(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// True if the matrix is square and equal to the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                let want = if i == j { F::ONE } else { F::ZERO };
                if self.get(i, j) != want {
                    return false;
                }
            }
        }
        true
    }

    /// In-place reduction to *reduced row echelon form*; returns the rank.
    ///
    /// Pivot normalization and elimination run as packed-slab row
    /// operations over the contiguous storage.
    pub fn rref(&mut self) -> usize {
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row == self.rows {
                break;
            }
            // Find a nonzero pivot in this column at or below pivot_row.
            let Some(src) = (pivot_row..self.rows).find(|&r| !self.get(r, col).is_zero()) else {
                continue;
            };
            self.swap_rows(pivot_row, src);
            // Normalize the pivot row.
            let p = self.get(pivot_row, col);
            let pinv = p.inv().expect("pivot is nonzero");
            let rb = self.row_bytes();
            F::mul_slice(pinv, &mut self.data[pivot_row * rb..(pivot_row + 1) * rb]);
            // Eliminate the column everywhere else.
            for r in 0..self.rows {
                if r != pivot_row {
                    let factor = self.get(r, col);
                    if !factor.is_zero() {
                        self.row_axpy(r, pivot_row, factor);
                    }
                }
            }
            pivot_row += 1;
        }
        pivot_row
    }

    /// The rank, computed on a scratch copy.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.clone().rref()
    }

    /// The inverse of a square matrix, or `None` if singular.
    #[must_use]
    pub fn inverse(&self) -> Option<Matrix<F>> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        // Augment [self | I] and reduce.
        let mut aug = Matrix::zero(n, 2 * n);
        for i in 0..n {
            for j in 0..n {
                aug.set(i, j, self.get(i, j));
            }
            aug.set(i, n + i, F::ONE);
        }
        aug.rref();
        // `self` is invertible iff the left block reduced to the identity.
        // (The rank of the *augmented* matrix is always n, so it proves
        // nothing on its own.)
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { F::ONE } else { F::ZERO };
                if aug.get(i, j) != want {
                    return None;
                }
            }
        }
        let mut out = Matrix::zero(n, n);
        for i in 0..n {
            for j in 0..n {
                out.set(i, j, aug.get(i, n + j));
            }
        }
        Some(out)
    }

    /// Solves `self · x = b` for square, full-rank `self`.
    ///
    /// Returns `None` when the system is singular (or inconsistent).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `b.len() != self.nrows()`.
    pub fn solve(&self, b: &[F]) -> Result<Option<Vec<F>>, ShapeError> {
        if b.len() != self.rows {
            return Err(ShapeError::new(format!(
                "solve: matrix has {} rows, b has {}",
                self.rows,
                b.len()
            )));
        }
        if self.rows != self.cols {
            return Err(ShapeError::new("solve requires a square matrix"));
        }
        let n = self.rows;
        let mut aug = Matrix::zero(n, n + 1);
        for (i, &rhs) in b.iter().enumerate() {
            for j in 0..n {
                aug.set(i, j, self.get(i, j));
            }
            aug.set(i, n, rhs);
        }
        aug.rref();
        // Solvable (uniquely) iff the left block reduced to the identity;
        // otherwise the system is singular or a pivot landed in column n
        // (inconsistent).
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { F::ONE } else { F::ZERO };
                if aug.get(i, j) != want {
                    return Ok(None);
                }
            }
        }
        Ok(Some((0..n).map(|i| aug.get(i, n)).collect()))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let rb = self.row_bytes();
        let (a, b) = (a.min(b), a.max(b));
        let (first, second) = self.data.split_at_mut(b * rb);
        first[a * rb..(a + 1) * rb].swap_with_slice(&mut second[..rb]);
    }

    /// `row[dst] -= factor * row[src]`, as one slab axpy with coefficient
    /// `-factor`.
    fn row_axpy(&mut self, dst: usize, src: usize, factor: F) {
        debug_assert_ne!(dst, src);
        let rb = self.row_bytes();
        let (dst_slab, src_slab) = if dst < src {
            let (lo, hi) = self.data.split_at_mut(src * rb);
            (&mut lo[dst * rb..(dst + 1) * rb], &hi[..rb])
        } else {
            let (lo, hi) = self.data.split_at_mut(dst * rb);
            (&mut hi[..rb], &lo[src * rb..(src + 1) * rb])
        };
        F::mul_add_slice(-factor, src_slab, dst_slab);
    }
}

impl<F: SlabField> fmt::Display for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:?}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Field, Gf2, Gf256, F257};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_properties() {
        let id = Matrix::<Gf256>::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.rank(), 4);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(vec![
            vec![Gf256::new(1)],
            vec![Gf256::new(1), Gf256::new(2)],
        ])
        .unwrap_err();
        assert!(err.to_string().contains("row 1 has 2"));
    }

    #[test]
    fn rref_known_example_f257() {
        // [1 2; 3 4] over F257 has rank 2.
        let mut m = Matrix::from_rows(vec![
            vec![F257::from_u64(1), F257::from_u64(2)],
            vec![F257::from_u64(3), F257::from_u64(4)],
        ])
        .unwrap();
        assert_eq!(m.rref(), 2);
        assert!(m.is_identity());
    }

    #[test]
    fn rank_deficient_detected() {
        // Second row is 2x the first over F257.
        let m = Matrix::from_rows(vec![
            vec![F257::from_u64(1), F257::from_u64(2)],
            vec![F257::from_u64(2), F257::from_u64(4)],
        ])
        .unwrap();
        assert_eq!(m.rank(), 1);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn inverse_round_trip_random() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut found_invertible = 0;
        for _ in 0..20 {
            let m = Matrix::<Gf256>::random(5, 5, &mut rng);
            if let Some(inv) = m.inverse() {
                found_invertible += 1;
                assert!(m.matmul(&inv).unwrap().is_identity());
                assert!(inv.matmul(&m).unwrap().is_identity());
            }
        }
        // Over GF(256) a random 5x5 matrix is invertible w.p. ~0.996.
        assert!(found_invertible >= 15);
    }

    #[test]
    fn solve_round_trip() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let m = Matrix::<F257>::random(6, 6, &mut rng);
            if m.rank() < 6 {
                continue;
            }
            let x: Vec<F257> = (0..6).map(|i| F257::from_u64(i as u64 + 3)).collect();
            let b = m.matvec(&x).unwrap();
            let solved = m.solve(&b).unwrap().expect("full rank");
            assert_eq!(solved, x);
        }
    }

    #[test]
    fn solve_singular_returns_none() {
        let m = Matrix::from_rows(vec![
            vec![Gf256::new(1), Gf256::new(1)],
            vec![Gf256::new(1), Gf256::new(1)],
        ])
        .unwrap();
        let b = vec![Gf256::new(1), Gf256::new(2)];
        assert_eq!(m.solve(&b).unwrap(), None);
    }

    #[test]
    fn matvec_shape_error() {
        let m = Matrix::<Gf256>::identity(3);
        assert!(m.matvec(&[Gf256::ONE]).is_err());
    }

    #[test]
    fn matmul_associative_spot_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::<Gf256>::random(3, 4, &mut rng);
        let b = Matrix::<Gf256>::random(4, 2, &mut rng);
        let c = Matrix::<Gf256>::random(2, 5, &mut rng);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert_eq!(left, right);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = Matrix::<Gf2>::random(4, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn rank_bounded_by_dims_gf2() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let m = Matrix::<Gf2>::random(5, 9, &mut rng);
            assert!(m.rank() <= 5);
        }
    }

    #[test]
    fn packed_row_views_agree_with_get() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = Matrix::<Gf256>::random(3, 5, &mut rng);
        for r in 0..3 {
            let row = m.row(r);
            assert_eq!(Gf256::unpack(m.packed_row(r)), row);
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(m.get(r, c), v);
            }
        }
        assert_eq!(m.packed_rows().count(), 3);
    }

    #[test]
    fn display_renders_rows() {
        let m = Matrix::<Gf2>::identity(2);
        let s = m.to_string();
        assert!(s.lines().count() == 2);
    }
}
