//! Incremental row-echelon basis: the RLNC decoder hot path.
//!
//! # The coefficient/payload split
//!
//! Every inserted row is an augmented equation `[k coefficients | payload]`,
//! but only the `k`-symbol coefficient prefix ever decides anything: pivot
//! selection, innovation verdicts, rank. Since PR 6 the basis therefore
//! stores the two parts separately:
//!
//! * **coefficient slab** — one packed `pivot_width`-symbol row per stored
//!   equation, kept *eagerly* in reduced (Gauss–Jordan) form. Inserts,
//!   [`EchelonBasis::would_be_innovative`] probes and
//!   [`EchelonBasis::is_helped_by`] touch only this slab, so a reception
//!   costs `O(rank · k)` regardless of payload size — and a *redundant*
//!   reception does **zero** payload work.
//! * **payload slab + elimination log** — payload tails are appended
//!   verbatim (one `memcpy`) and the elimination applied to the coefficient
//!   prefix is recorded instead of executed: per innovative insert the log
//!   stores the row-indexed reduction multipliers, the pivot normalizer,
//!   and the back-substitution multipliers. The log is *replayed* onto the
//!   payload slab only when payload bytes are actually observed:
//!   [`EchelonBasis::solution`], row materialization, a recoder combining
//!   stored rows, or an explicit [`EchelonBasis::settle`].
//!
//! # Replay schedules
//!
//! Replay runs on one of two schedules, selected by the process-global
//! [`crate::ReplayMode`] knob (`AG_LINALG_REPLAY`, default `Auto`):
//!
//! * **row-wise** — one logged event at a time, as fused multi-row passes
//!   ([`SlabField::mul_add_multi`] gather + normalize +
//!   [`SlabField::mul_add_scatter`] fan-out). `O(pending)` passes over the
//!   payload slab; right for shallow flushes (a recode emit settling a few
//!   events).
//! * **blocked (BLAS-3)** — the whole pending suffix at once: the events
//!   are first replayed onto a `rank × rank` *identity coefficient panel*
//!   (L1-resident, `rank` symbols per row) to factor the batch into one
//!   dense transform, which a single [`SlabField::mul_add_block`] GEMM —
//!   register-blocked and tiled — applies to the payload rows through a
//!   stride-padded scratch panel (odd multiple of 64 bytes per row, so
//!   power-of-two payload sizes stop aliasing in L1). One pass over the
//!   payloads instead of `O(pending)`; right for deep flushes (`decode`
//!   after a full receive stream). `Auto` picks it exactly for deep,
//!   dense pending suffixes (see `core_ops::use_blocked`).
//!
//! Either schedule executes the *same field operations* eager elimination
//! would, merely batched and reordered within single output symbols; field
//! arithmetic is exact and GF addition is XOR, so every materialized byte —
//! and every verdict, which never depends on payloads at all — is
//! bit-identical to the eager path. The `ag-rlnc` differential suite pins
//! this against the preserved scalar [`crate::reference::ScalarBasis`]
//! oracle, on both schedules.
//!
//! Elimination itself runs through the [`SlabField`] bulk kernels —
//! runtime-dispatched through the `ag_gf::Kernel` ladder (product tables /
//! SWAR / SIMD). The shared `core_ops` functions are also used by
//! [`crate::BasisArena`], the simulation-wide arena that holds every
//! node's basis in one preallocated slab, so the owned and arena-backed
//! bases are bit-identical by construction.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::marker::PhantomData;

use ag_gf::SlabField;

/// Outcome of inserting one equation into an [`EchelonBasis`].
///
/// In the paper's vocabulary (Definition 3), an [`Insertion::Innovative`]
/// row is a *helpful message*: it increased the rank of the node that
/// received it. A [`Insertion::Redundant`] row was already in the span and
/// is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insertion {
    /// The row increased the rank of the basis.
    Innovative,
    /// The row was linearly dependent on the existing basis and was dropped.
    Redundant,
}

impl Insertion {
    /// True for [`Insertion::Innovative`].
    #[must_use]
    pub fn is_innovative(self) -> bool {
        matches!(self, Insertion::Innovative)
    }
}

/// A malformed row rejected by [`EchelonBasis::try_insert`] before any
/// elimination ran — the basis is untouched when one of these is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisError {
    /// The row has fewer entries than the pivot width.
    RowTooShort {
        /// Entries in the offending row.
        len: usize,
        /// Required minimum (the basis's pivot width).
        pivot_width: usize,
    },
    /// The row's length differs from the rows already stored.
    LengthMismatch {
        /// Symbols per stored row.
        expected: usize,
        /// Symbols in the offending row.
        got: usize,
    },
    /// A packed row's byte length is not a multiple of the symbol size.
    Misaligned {
        /// Byte length of the offending slab.
        len: usize,
        /// Bytes per symbol for this field.
        symbol_bytes: usize,
    },
}

impl fmt::Display for BasisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BasisError::RowTooShort { len, pivot_width } => {
                write!(
                    f,
                    "row of length {len} shorter than pivot width {pivot_width}"
                )
            }
            BasisError::LengthMismatch { expected, got } => write!(
                f,
                "row has {got} symbols but stored rows have {expected} \
                 (all rows in a basis must have equal length)"
            ),
            BasisError::Misaligned { len, symbol_bytes } => write!(
                f,
                "packed row of {len} bytes is not a multiple of the \
                 {symbol_bytes}-byte symbol size"
            ),
        }
    }
}

impl Error for BasisError {}

/// The shared Gauss–Jordan elimination core.
///
/// Both [`EchelonBasis`] (one growing basis, `Vec`-backed) and
/// [`crate::BasisArena`] (all of a simulation's bases in one preallocated
/// slab) run their eliminations through these functions, so the two are
/// bit-identical by construction — the property the golden-trajectory and
/// differential suites pin end to end.
pub(crate) mod core_ops {
    use ag_gf::SlabField;

    /// Reads the symbol in column `c` of a packed row.
    #[inline]
    pub(crate) fn col<F: SlabField>(row: &[u8], c: usize) -> F {
        F::read_symbol(&row[c * F::SYMBOL_BYTES..])
    }

    /// Reduces the coefficient prefix `crow` against the stored (reduced)
    /// coefficient slab in one fused pass, leaving the row-indexed
    /// elimination multipliers in `factors` (one packed symbol per stored
    /// row; zero where the row was unused). Returns the leading pivot-free
    /// nonzero column — the new pivot — or `None` when the row was
    /// annihilated (already in the span).
    ///
    /// The multipliers can be assembled *before* any elimination runs
    /// because the slab is in reduced form: stored rows carry zeros at
    /// every pivot column but their own, so eliminating one pivot never
    /// changes `crow`'s value at another pivot column — the multiplier for
    /// stored row `ri` with pivot column `pivot_cols[ri]` is simply
    /// `-crow[pivot_cols[ri]]` as received. For the same reason the
    /// surviving value at every pivot-free column equals what sequential
    /// column-order elimination would have produced, making the returned
    /// pivot (and the verdict) identical to the scalar oracle's.
    ///
    /// `pivot_cols` is the row-indexed pivot map (`rank` entries, one per
    /// stored row in insertion order) — iterating stored rows directly
    /// keeps this gather `O(rank)` instead of scanning every column.
    pub(crate) fn reduce_coeff<F: SlabField>(
        pivot_cols: &[usize],
        coeff: &[u8],
        crow: &mut [u8],
        factors: &mut Vec<u8>,
    ) -> Option<usize> {
        let sb = F::SYMBOL_BYTES;
        let rank = pivot_cols.len();
        factors.clear();
        factors.resize(rank * sb, 0);
        for (ri, &c) in pivot_cols.iter().enumerate() {
            let x = col::<F>(crow, c);
            if !x.is_zero() {
                (-x).write_symbol(&mut factors[ri * sb..]);
            }
        }
        F::mul_add_multi(factors, coeff, crow);
        // Pivot columns were annihilated exactly, so the leading nonzero
        // column is automatically pivot-free.
        let lead = (0..crow.len() / sb).find(|&c| !col::<F>(crow, c).is_zero());
        debug_assert!(
            lead.is_none_or(|c| !pivot_cols.contains(&c)),
            "pivot columns must be fully eliminated"
        );
        lead
    }

    /// Normalizes a fully reduced coefficient row (pivot entry becomes 1)
    /// and back-substitutes it into every stored row in one fused scatter,
    /// leaving the row-indexed back-substitution multipliers in `back`.
    /// Returns the pivot normalizer `pinv`. The caller then appends `crow`
    /// as the newest stored row and logs `(factors, pinv, back)` for the
    /// deferred payload replay.
    pub(crate) fn normalize_and_back_substitute<F: SlabField>(
        coeff: &mut [u8],
        rank: usize,
        pivot_col: usize,
        crow: &mut [u8],
        back: &mut Vec<u8>,
    ) -> F {
        let sb = F::SYMBOL_BYTES;
        let kb = crow.len();
        let pinv = col::<F>(crow, pivot_col).inv().expect("pivot is nonzero");
        F::mul_slice(pinv, crow);
        back.clear();
        back.resize(rank * sb, 0);
        for r in 0..rank {
            let g: F = col::<F>(&coeff[r * kb..], pivot_col);
            if !g.is_zero() {
                (-g).write_symbol(&mut back[r * sb..]);
            }
        }
        F::mul_add_scatter(back, crow, &mut coeff[..rank * kb]);
        pinv
    }

    /// Byte offset of logged event `e` in an elimination log.
    ///
    /// Event `e` records `[e reduce multipliers | pinv | e back-substitution
    /// multipliers]` — `(2e + 1)` symbols — so the events pack contiguously
    /// at offset `Σ_{i<e} (2i + 1) = e²` symbols.
    #[inline]
    pub(crate) fn log_offset<F: SlabField>(e: usize) -> usize {
        e * e * F::SYMBOL_BYTES
    }

    /// Replays logged elimination event `e` onto the payload slab: the
    /// exact field operations eager elimination would have applied to the
    /// payload tails when stored row `e` was inserted, executed as two
    /// fused passes. On entry `pay` rows `0..e` are materialized (reduced)
    /// and row `e` still holds the raw received payload; on exit row `e`
    /// is materialized too.
    pub(crate) fn replay_event<F: SlabField>(
        pay: &mut [u8],
        log: &[u8],
        e: usize,
        pay_bytes: usize,
    ) {
        let sb = F::SYMBOL_BYTES;
        let ev = &log[log_offset::<F>(e)..];
        let (fwd, rest) = ev.split_at(e * sb);
        let (pinv, back) = rest[..(e + 1) * sb].split_at(sb);
        let (done, tail) = pay.split_at_mut(e * pay_bytes);
        let row_e = &mut tail[..pay_bytes];
        F::mul_add_multi(fwd, done, row_e);
        F::mul_slice(F::read_symbol(pinv), row_e);
        F::mul_add_scatter(back, row_e, done);
    }

    /// Pending-event count below which [`crate::ReplayMode::Auto`] stays
    /// row-wise: the transform build and panel copies only amortize over a
    /// batch of events.
    pub(crate) const BLOCKED_MIN_PENDING: usize = 16;

    /// Payload rows narrower than this replay row-wise under
    /// [`crate::ReplayMode::Auto`]: the panel machinery exists to feed the
    /// wide register-blocked kernels.
    pub(crate) const BLOCKED_MIN_PAY_BYTES: usize = 64;

    /// Source/destination panel row stride for the blocked replay scratch:
    /// `pay_bytes` rounded up to a whole number of cache lines and forced
    /// to an *odd* multiple of 64, so power-of-two payload sizes (the
    /// common case) stop aliasing every panel row onto a handful of L1
    /// sets — measured worth ~9% GEMM throughput on the k=128 / 1 KiB
    /// decode shape (`bench_gf_block`). Falls back to `pay_bytes` exactly
    /// if the symbol size ever failed to divide the cache line (no such
    /// field today).
    pub(crate) fn padded_stride<F: SlabField>(pay_bytes: usize) -> usize {
        if 64 % F::SYMBOL_BYTES != 0 {
            return pay_bytes;
        }
        let lines = pay_bytes.div_ceil(64);
        (if lines.is_multiple_of(2) {
            lines + 1
        } else {
            lines
        }) * 64
    }

    /// Should this flush take the blocked schedule? Deterministic in the
    /// basis state alone (pending-suffix shape plus log density), and both
    /// schedules produce identical bytes, so the choice is invisible to
    /// results.
    pub(crate) fn use_blocked<F: SlabField>(
        mode: crate::ReplayMode,
        rank: usize,
        flushed: usize,
        pay_bytes: usize,
        log: &[u8],
    ) -> bool {
        match mode {
            crate::ReplayMode::Rowwise => false,
            crate::ReplayMode::Blocked => rank > flushed,
            crate::ReplayMode::Auto => {
                let pending = rank - flushed;
                if pending < BLOCKED_MIN_PENDING
                    || pay_bytes < BLOCKED_MIN_PAY_BYTES
                    || pending * 2 < rank
                {
                    return false;
                }
                // The dense panel multiply pays rank² multiplies whatever
                // the log holds; a sparse log — e.g. a source node, whose
                // unit-row inserts carry all-zero multipliers — replays
                // row-wise in O(rank) *skipped* gathers instead. Require a
                // quarter of the pending log bytes nonzero.
                let region = &log[log_offset::<F>(flushed)..log_offset::<F>(rank)];
                let nz = region.iter().filter(|&&b| b != 0).count();
                nz * 4 >= region.len().max(1)
            }
        }
    }

    /// Replays every pending event `flushed..rank` as one blocked panel
    /// application — the BLAS-3 replay schedule.
    ///
    /// The pending suffix of the log is first replayed onto an identity
    /// panel of `rank × rank` packed symbols (L1-resident: coefficient
    /// width, not payload width), factoring the whole suffix into one
    /// dense transform `T` with final payload row `i = Σ_j T[i,j] ·
    /// (current payload row j)`. Rows `< flushed` are already materialized
    /// and enter as unit rows. The payload slab is then updated by a
    /// single [`SlabField::mul_add_block`] panel multiply through a
    /// stride-padded scratch panel (see [`padded_stride`]).
    ///
    /// Bit-identity with the row-wise schedule: building `T` performs, in
    /// coefficient space, exactly the multiplier products sequential
    /// replay would fold into the payload bytes; field multiplication is
    /// exact and addition is XOR, so re-associating the accumulation into
    /// a panel multiply reproduces the row-wise bytes bit for bit (pinned
    /// by the differential suite and the golden trajectories).
    pub(crate) fn replay_blocked<F: SlabField>(
        pay: &mut [u8],
        log: &[u8],
        flushed: usize,
        rank: usize,
        pay_bytes: usize,
        transform: &mut Vec<u8>,
        panel: &mut Vec<u8>,
    ) {
        let sb = F::SYMBOL_BYTES;
        let tb = rank * sb;
        transform.clear();
        transform.resize(rank * tb, 0);
        for i in 0..rank {
            F::ONE.write_symbol(&mut transform[i * tb + i * sb..]);
        }
        for e in flushed..rank {
            replay_event::<F>(transform, log, e, tb);
        }
        // One blocked panel multiply from a stride-padded copy of the
        // payload slab into a zeroed destination panel; the padding
        // columns multiply zeros and are never copied back.
        let ps = padded_stride::<F>(pay_bytes);
        panel.clear();
        panel.resize(2 * rank * ps, 0);
        let (srcs, dsts) = panel.split_at_mut(rank * ps);
        for (src_row, pay_row) in srcs.chunks_exact_mut(ps).zip(pay.chunks_exact(pay_bytes)) {
            src_row[..pay_bytes].copy_from_slice(pay_row);
        }
        F::mul_add_block(transform, srcs, dsts, ps);
        for (dst_row, pay_row) in dsts.chunks_exact(ps).zip(pay.chunks_exact_mut(pay_bytes)) {
            pay_row.copy_from_slice(&dst_row[..pay_bytes]);
        }
    }

    /// Settles every pending elimination event onto `pay` under the active
    /// [`crate::ReplayMode`], leaving `flushed == rank`. `pay` must be
    /// exactly `rank` rows. The shared flush entry point of
    /// [`crate::EchelonBasis`] and the arena nodes.
    // ag-lint: hot-path
    pub(crate) fn flush_pending<F: SlabField>(
        pay: &mut [u8],
        log: &[u8],
        flushed: &mut usize,
        rank: usize,
        pay_bytes: usize,
        transform: &mut Vec<u8>,
        panel: &mut Vec<u8>,
    ) {
        if *flushed >= rank {
            return;
        }
        if use_blocked::<F>(crate::replay_mode(), rank, *flushed, pay_bytes, log) {
            replay_blocked::<F>(pay, log, *flushed, rank, pay_bytes, transform, panel);
            *flushed = rank;
        } else {
            while *flushed < rank {
                replay_event::<F>(pay, log, *flushed, pay_bytes);
                *flushed += 1;
            }
        }
    }
}

/// Lazily maintained payload state: raw tails plus the elimination log
/// that turns them into reduced rows on demand. Interior-mutable because
/// materialization is triggered from `&self` read paths (solution, row
/// views, recoder combination).
#[derive(Debug, Clone)]
struct PayLedger {
    /// Payload tails, one `pay_bytes` row per stored row. Rows `< flushed`
    /// are materialized (reduced); rows `>= flushed` are raw as received.
    pay: Vec<u8>,
    /// Elimination events, packed per [`core_ops::log_offset`].
    log: Vec<u8>,
    /// Number of events already replayed onto `pay`.
    flushed: usize,
}

/// Reusable scratch buffers; transient, never part of logical state.
#[derive(Debug, Clone)]
struct Scratch {
    /// Row-indexed reduction multipliers (`rank` symbols).
    factors: Vec<u8>,
    /// Row-indexed back-substitution multipliers (`rank` symbols).
    back: Vec<u8>,
    /// Coefficient-prefix probe row for `&self` innovation verdicts.
    probe: Vec<u8>,
    /// Row copy for the borrowing insert path.
    insert: Vec<u8>,
    /// Blocked-replay transform panel (`rank × rank` packed symbols).
    transform: Vec<u8>,
    /// Blocked-replay stride-padded source/destination payload panels.
    panel: Vec<u8>,
}

/// A growing row-echelon basis of vectors of fixed width over `F`.
///
/// Rows may carry an *augmented tail* (e.g. RLNC payload symbols) beyond the
/// `pivot_width` leading coefficients: only the leading `pivot_width`
/// entries participate in pivot selection, and since PR 6 the tails are not
/// even eliminated eagerly — see the [module docs](self) for the
/// coefficient/payload split. Observed state (verdicts, ranks, materialized
/// rows, solutions) is bit-identical to eager Gauss–Jordan decoding.
///
/// Inserting a row costs `O(rank · pivot_width)` symbol operations over the
/// coefficient slab plus one payload `memcpy`; the deferred payload
/// elimination is paid once per stored row when payloads are next observed,
/// in fused multi-row kernel passes. For simulations that hold one basis
/// per node, [`crate::BasisArena`] provides the same split (literally the
/// same `core_ops` code) over preallocated slabs shared by all nodes.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf256};
/// use ag_linalg::{EchelonBasis, Insertion};
///
/// let mut basis = EchelonBasis::<Gf256>::new(3);
/// let e0 = vec![Gf256::ONE, Gf256::ZERO, Gf256::ZERO];
/// assert_eq!(basis.insert(e0.clone()), Insertion::Innovative);
/// assert_eq!(basis.insert(e0), Insertion::Redundant);
/// assert_eq!(basis.rank(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EchelonBasis<F> {
    /// Width of the pivot (coefficient) prefix of every row.
    pivot_width: usize,
    /// Symbols per stored row (pivot prefix + augmented tail); fixed by the
    /// first stored row.
    row_elems: Option<usize>,
    /// `pivots[c]` = index of the stored row whose pivot is column `c`.
    pivots: Vec<Option<usize>>,
    /// Row-indexed inverse of `pivots`: `pivot_cols[ri]` = pivot column of
    /// stored row `ri`, in insertion order. Lets the reduction gather
    /// iterate stored rows (`O(rank)`) instead of scanning every column.
    pivot_cols: Vec<usize>,
    /// Independent rows stored so far.
    rank: usize,
    /// Reduced coefficient prefixes, packed and contiguous: row `i`
    /// occupies `coeff[i * kb .. (i + 1) * kb]` for `kb = pivot_width`
    /// packed symbols. Always fully reduced (Gauss–Jordan).
    coeff: Vec<u8>,
    /// Raw payload tails + elimination log, replayed on demand.
    ledger: RefCell<PayLedger>,
    /// Reusable buffers (excluded from `PartialEq`).
    scratch: RefCell<Scratch>,
    _field: PhantomData<F>,
}

/// Logical-state equality: two bases are equal iff they store the same
/// rows with the same pivots. Payloads are compared materialized (both
/// sides are flushed first); the transient scratch buffers and log
/// histories never participate.
impl<F: SlabField> PartialEq for EchelonBasis<F> {
    fn eq(&self, other: &Self) -> bool {
        self.flush_payloads();
        other.flush_payloads();
        self.pivot_width == other.pivot_width
            && self.row_elems == other.row_elems
            && self.pivots == other.pivots
            && self.rank == other.rank
            && self.coeff == other.coeff
            && self.ledger.borrow().pay == other.ledger.borrow().pay
    }
}

impl<F: SlabField> Eq for EchelonBasis<F> {}

impl<F: SlabField> EchelonBasis<F> {
    /// Creates an empty basis whose rows have `pivot_width` leading
    /// coefficient entries.
    #[must_use]
    pub fn new(pivot_width: usize) -> Self {
        let sb = F::SYMBOL_BYTES;
        EchelonBasis {
            pivot_width,
            row_elems: None,
            pivots: vec![None; pivot_width],
            pivot_cols: Vec::with_capacity(pivot_width),
            rank: 0,
            coeff: Vec::new(),
            ledger: RefCell::new(PayLedger {
                pay: Vec::new(),
                log: Vec::new(),
                flushed: 0,
            }),
            scratch: RefCell::new(Scratch {
                factors: Vec::with_capacity(pivot_width * sb),
                back: Vec::with_capacity(pivot_width * sb),
                probe: Vec::with_capacity(pivot_width * sb),
                insert: Vec::new(),
                transform: Vec::new(),
                panel: Vec::new(),
            }),
            _field: PhantomData,
        }
    }

    /// The number of independent rows stored so far.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The pivot (coefficient) width rows must have at minimum.
    #[must_use]
    pub fn pivot_width(&self) -> usize {
        self.pivot_width
    }

    /// True once the basis spans the full coefficient space.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.rank == self.pivot_width
    }

    /// Bytes per stored row (0 before the first row is stored).
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_elems.unwrap_or(0) * F::SYMBOL_BYTES
    }

    /// Bytes of the packed coefficient prefix of every row.
    #[must_use]
    pub fn coeff_bytes(&self) -> usize {
        self.pivot_width * F::SYMBOL_BYTES
    }

    /// Bytes of the payload tail of every stored row (0 before the first
    /// row is stored, or when rows are pivot-prefix-only).
    #[must_use]
    pub fn pay_bytes(&self) -> usize {
        self.row_elems
            .map_or(0, |re| (re - self.pivot_width) * F::SYMBOL_BYTES)
    }

    /// The reduced coefficient prefix of row `i` as a packed slab.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    #[must_use]
    pub fn coeff_row(&self, i: usize) -> &[u8] {
        assert!(i < self.rank, "row index out of bounds");
        let kb = self.coeff_bytes();
        &self.coeff[i * kb..(i + 1) * kb]
    }

    /// Iterates over the stored rows' reduced coefficient prefixes, in
    /// insertion order. Payloads are untouched — this is the hot-path view
    /// for helpfulness scans.
    pub fn coeff_rows(&self) -> impl Iterator<Item = &[u8]> {
        // `max(1)` only matters for a zero-width basis, where coeff is
        // empty anyway.
        self.coeff
            .chunks_exact(self.coeff_bytes().max(1))
            .take(self.rank)
    }

    /// Materializes full row `i` (coefficients + reduced payload) into
    /// `out`, replaying any pending payload elimination first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn copy_packed_row_into(&self, i: usize, out: &mut Vec<u8>) {
        assert!(i < self.rank, "row index out of bounds");
        self.flush_payloads();
        let pb = self.pay_bytes();
        out.clear();
        out.extend_from_slice(self.coeff_row(i));
        let led = self.ledger.borrow();
        out.extend_from_slice(&led.pay[i * pb..(i + 1) * pb]);
    }

    /// Row `i` decoded back to field elements (materialized).
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    #[must_use]
    pub fn row(&self, i: usize) -> Vec<F> {
        assert!(i < self.rank, "row index out of bounds");
        self.flush_payloads();
        let pb = self.pay_bytes();
        let mut v = F::unpack(self.coeff_row(i));
        let led = self.ledger.borrow();
        v.extend(F::unpack(&led.pay[i * pb..(i + 1) * pb]));
        v
    }

    /// All stored rows, materialized as element vectors. Prefer
    /// [`EchelonBasis::coeff_rows`] on hot paths that only need headers.
    #[must_use]
    pub fn rows(&self) -> Vec<Vec<F>> {
        (0..self.rank).map(|i| self.row(i)).collect()
    }

    /// Accumulates the linear combination `Σᵢ factors[i] · row_i` of the
    /// stored rows into `out` (`out += …`), materializing payloads first.
    /// `factors` holds one packed symbol per stored row; zero factors are
    /// skipped. This is the recoder's emit kernel: two fused gathers (one
    /// over the coefficient slab, one over the payload slab) per packet.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is not exactly `rank` packed symbols or `out` is
    /// not exactly [`EchelonBasis::row_bytes`] long.
    pub fn accumulate_rows_into(&self, factors: &[u8], out: &mut [u8]) {
        assert_eq!(
            factors.len(),
            self.rank * F::SYMBOL_BYTES,
            "one packed factor per stored row"
        );
        assert_eq!(out.len(), self.row_bytes(), "out must be one full row");
        self.flush_payloads();
        let (oc, op) = out.split_at_mut(self.coeff_bytes());
        F::mul_add_multi(factors, &self.coeff, oc);
        let led = self.ledger.borrow();
        F::mul_add_multi(factors, &led.pay, op);
    }

    /// Forces the deferred payload elimination to settle now instead of at
    /// the next read. Useful for callers that want the (possibly blocked)
    /// replay off their critical path — e.g. during idle time between a
    /// completing receive stream and the eventual [`EchelonBasis::solution`]
    /// call — and for benchmarks that time the flush stage in isolation.
    /// Idempotent, and invisible to results: every read path flushes on
    /// demand anyway.
    pub fn settle(&self) {
        self.flush_payloads();
    }

    /// Replays every pending elimination event onto the payload slab,
    /// row-wise or as one blocked panel application per the active
    /// [`crate::ReplayMode`]. After this, payload rows are exactly what
    /// eager elimination would have produced — both schedules are
    /// bit-identical. Idempotent; a no-op when nothing is pending or rows
    /// carry no payload.
    // ag-lint: hot-path
    fn flush_payloads(&self) {
        let mut led = self.ledger.borrow_mut();
        let pb = self.pay_bytes();
        if pb == 0 {
            led.flushed = self.rank;
            return;
        }
        let led = &mut *led;
        if led.flushed >= self.rank {
            return;
        }
        let mut sc = self.scratch.borrow_mut();
        let Scratch {
            transform, panel, ..
        } = &mut *sc;
        core_ops::flush_pending::<F>(
            &mut led.pay,
            &led.log,
            &mut led.flushed,
            self.rank,
            pb,
            transform,
            panel,
        );
    }

    /// Inserts an equation. Returns whether it was innovative.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() < pivot_width`, or if its length differs from
    /// previously inserted rows. Use [`EchelonBasis::try_insert`] for a
    /// typed error instead.
    pub fn insert(&mut self, row: Vec<F>) -> Insertion {
        match self.try_insert(row) {
            Ok(outcome) => outcome,
            // ag-lint: allow(panic-policy) — documented panicking wrapper;
            // try_insert is the typed-error twin.
            Err(e) => panic!("{e}"),
        }
    }

    /// Inserts an equation, rejecting malformed rows with a typed error
    /// *before* any elimination runs — the basis is unchanged on `Err`.
    ///
    /// # Errors
    ///
    /// [`BasisError::RowTooShort`] when `row.len() < pivot_width`;
    /// [`BasisError::LengthMismatch`] when the length differs from the rows
    /// already stored.
    pub fn try_insert(&mut self, row: Vec<F>) -> Result<Insertion, BasisError> {
        self.validate(row.len())?;
        Ok(self.insert_validated(F::pack(&row)))
    }

    /// Like [`EchelonBasis::try_insert`] but accepting an already-packed
    /// row slab — the zero-conversion entry point the RLNC decoder uses.
    ///
    /// # Errors
    ///
    /// The [`EchelonBasis::try_insert`] errors, plus
    /// [`BasisError::Misaligned`] when `row.len()` is not a multiple of
    /// [`SlabField::SYMBOL_BYTES`].
    pub fn try_insert_packed(&mut self, row: Vec<u8>) -> Result<Insertion, BasisError> {
        if !row.len().is_multiple_of(F::SYMBOL_BYTES) {
            return Err(BasisError::Misaligned {
                len: row.len(),
                symbol_bytes: F::SYMBOL_BYTES,
            });
        }
        self.validate(row.len() / F::SYMBOL_BYTES)?;
        Ok(self.insert_validated(row))
    }

    /// Like [`EchelonBasis::try_insert_packed`] but *borrowing* the row:
    /// the bytes are copied into an internal reusable scratch buffer and
    /// reduced there, so a redundant insertion costs **zero heap
    /// allocations** once the scratch has warmed up — the contract the
    /// engine's redundant-reception path relies on.
    ///
    /// # Errors
    ///
    /// Exactly the [`EchelonBasis::try_insert_packed`] errors; the basis
    /// (its logical state — scratch is transient) is unchanged on `Err`
    /// *and* on a redundant insert.
    // ag-lint: hot-path
    pub fn try_insert_packed_slice(&mut self, row: &[u8]) -> Result<Insertion, BasisError> {
        if !row.len().is_multiple_of(F::SYMBOL_BYTES) {
            return Err(BasisError::Misaligned {
                len: row.len(),
                symbol_bytes: F::SYMBOL_BYTES,
            });
        }
        self.validate(row.len() / F::SYMBOL_BYTES)?;
        let mut buf = std::mem::take(&mut self.scratch.get_mut().insert);
        buf.clear();
        buf.extend_from_slice(row);
        let outcome = self.insert_validated_slice(&mut buf);
        self.scratch.get_mut().insert = buf;
        Ok(outcome)
    }

    /// Like [`EchelonBasis::try_insert_packed_slice`] but reducing directly
    /// in the caller's buffer — no copy, no allocation ever. The
    /// coefficient prefix of `row` is clobbered by the elimination (the
    /// payload tail is left untouched; its elimination is deferred to the
    /// log), so callers that need the original bytes afterwards must keep
    /// their own copy.
    ///
    /// # Errors
    ///
    /// Exactly the [`EchelonBasis::try_insert_packed`] errors; the basis's
    /// logical state is unchanged on `Err` and on a redundant insert.
    // ag-lint: hot-path
    pub fn try_insert_packed_mut(&mut self, row: &mut [u8]) -> Result<Insertion, BasisError> {
        if !row.len().is_multiple_of(F::SYMBOL_BYTES) {
            return Err(BasisError::Misaligned {
                len: row.len(),
                symbol_bytes: F::SYMBOL_BYTES,
            });
        }
        self.validate(row.len() / F::SYMBOL_BYTES)?;
        Ok(self.insert_validated_slice(row))
    }

    /// Shape checks shared by every insertion entry point.
    fn validate(&self, elems: usize) -> Result<(), BasisError> {
        if elems < self.pivot_width {
            return Err(BasisError::RowTooShort {
                len: elems,
                pivot_width: self.pivot_width,
            });
        }
        if let Some(expected) = self.row_elems {
            if elems != expected {
                return Err(BasisError::LengthMismatch {
                    expected,
                    got: elems,
                });
            }
        }
        Ok(())
    }

    /// The elimination core; `row` is packed and already shape-checked.
    fn insert_validated(&mut self, mut row: Vec<u8>) -> Insertion {
        self.insert_validated_slice(&mut row)
    }

    /// Borrowed-buffer elimination core. Only the coefficient prefix of
    /// `row` is reduced in place; the payload tail is left exactly as
    /// passed (it is copied raw — its elimination is deferred to the log).
    // ag-lint: hot-path
    fn insert_validated_slice(&mut self, row: &mut [u8]) -> Insertion {
        let sb = F::SYMBOL_BYTES;
        let kb = self.pivot_width * sb;
        let (crow, pay_in) = row.split_at_mut(kb);
        let sc = self.scratch.get_mut();
        let Some(pivot_col) =
            core_ops::reduce_coeff::<F>(&self.pivot_cols, &self.coeff, crow, &mut sc.factors)
        else {
            return Insertion::Redundant;
        };
        let pinv = core_ops::normalize_and_back_substitute::<F>(
            &mut self.coeff,
            self.rank,
            pivot_col,
            crow,
            &mut sc.back,
        );
        self.coeff.extend_from_slice(crow);
        // Payload: raw memcpy now, elimination deferred to the log.
        let led = self.ledger.get_mut();
        led.pay.extend_from_slice(pay_in);
        led.log.extend_from_slice(&sc.factors);
        let at = led.log.len();
        led.log.resize(at + sb, 0);
        pinv.write_symbol(&mut led.log[at..]);
        led.log.extend_from_slice(&sc.back);
        self.pivots[pivot_col] = Some(self.rank);
        self.pivot_cols.push(pivot_col);
        self.row_elems = Some(row.len() / sb);
        self.rank += 1;
        Insertion::Innovative
    }

    /// Would `row` be innovative, without mutating the basis?
    ///
    /// This implements the paper's helpfulness check: node `x` is a
    /// *helpful node* for node `y` iff some vector in `x`'s subspace is
    /// independent of `y`'s subspace. Only the coefficient prefix is
    /// consulted, through reusable scratch buffers — the probe is
    /// allocation-free once warmed up and never touches payload state.
    #[must_use]
    pub fn would_be_innovative(&self, row: &[F]) -> bool {
        assert!(row.len() >= self.pivot_width);
        let mut sc = self.scratch.borrow_mut();
        let Scratch { factors, probe, .. } = &mut *sc;
        probe.clear();
        F::pack_into(&row[..self.pivot_width], probe);
        core_ops::reduce_coeff::<F>(&self.pivot_cols, &self.coeff, probe, factors).is_some()
    }

    /// Packed-slab variant of [`EchelonBasis::would_be_innovative`]; `row`
    /// may be a full packed row — only the pivot prefix is read.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the packed pivot prefix.
    #[must_use]
    pub fn would_be_innovative_packed(&self, row: &[u8]) -> bool {
        let kb = self.coeff_bytes();
        assert!(row.len() >= kb);
        let mut sc = self.scratch.borrow_mut();
        let Scratch { factors, probe, .. } = &mut *sc;
        probe.clear();
        probe.extend_from_slice(&row[..kb]);
        core_ops::reduce_coeff::<F>(&self.pivot_cols, &self.coeff, probe, factors).is_some()
    }

    /// True iff `other`'s span contains a vector outside `self`'s span,
    /// i.e. `other` (as a node) is helpful to `self`. Touches only
    /// coefficient headers on both sides.
    #[must_use]
    pub fn is_helped_by(&self, other: &EchelonBasis<F>) -> bool {
        other
            .coeff_rows()
            .any(|r| self.would_be_innovative_packed(r))
    }

    /// Once full, extracts the solution: row `i` of the result is the tail
    /// (augmented part) of the equation whose coefficient vector is the
    /// `i`-th unit vector. Returns `None` while rank < pivot width.
    ///
    /// With RLNC augmentation the tails are exactly the decoded source
    /// messages. This is where deferred payload elimination is settled:
    /// one blocked replay of the log (fused multi-row passes) materializes
    /// every tail, then the rows are read out in pivot order.
    #[must_use]
    pub fn solution(&self) -> Option<Vec<Vec<F>>> {
        if !self.is_full() {
            return None;
        }
        self.flush_payloads();
        let pb = self.pay_bytes();
        let led = self.ledger.borrow();
        let mut out = Vec::with_capacity(self.pivot_width);
        for c in 0..self.pivot_width {
            let ri = self.pivots[c].expect("full basis has all pivots");
            debug_assert!(
                (0..self.pivot_width).all(|j| {
                    let v: F = core_ops::col::<F>(self.coeff_row(ri), j);
                    if j == c {
                        v == F::ONE
                    } else {
                        v.is_zero()
                    }
                }),
                "fully reduced basis rows must be unit vectors"
            );
            out.push(F::unpack(&led.pay[ri * pb..(ri + 1) * pb]));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Field, Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(width: usize, i: usize) -> Vec<Gf256> {
        let mut v = vec![Gf256::ZERO; width];
        v[i] = Gf256::ONE;
        v
    }

    #[test]
    fn unit_vectors_fill_basis() {
        let mut b = EchelonBasis::<Gf256>::new(4);
        for i in 0..4 {
            assert!(!b.is_full());
            assert_eq!(b.insert(unit(4, i)), Insertion::Innovative);
        }
        assert!(b.is_full());
        assert_eq!(b.rank(), 4);
    }

    #[test]
    fn dependent_row_is_redundant() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        b.insert(vec![Gf256::new(1), Gf256::new(2), Gf256::new(3)]);
        b.insert(vec![Gf256::new(0), Gf256::new(1), Gf256::new(1)]);
        // Sum of the two inserted rows (GF(2^8) addition = XOR of bytes).
        let dep = vec![Gf256::new(1), Gf256::new(3), Gf256::new(2)];
        assert_eq!(b.insert(dep), Insertion::Redundant);
        assert_eq!(b.rank(), 2);
    }

    #[test]
    fn zero_row_is_redundant() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        assert_eq!(b.insert(vec![Gf256::ZERO; 3]), Insertion::Redundant);
        assert_eq!(b.rank(), 0);
    }

    #[test]
    fn rank_never_exceeds_width_under_random_inserts() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = EchelonBasis::<Gf2>::new(6);
        for _ in 0..100 {
            let row: Vec<Gf2> = (0..6).map(|_| Gf2::random(&mut rng)).collect();
            b.insert(row);
            assert!(b.rank() <= 6);
        }
        assert!(b.is_full(), "100 random GF(2) rows fill rank 6 w.h.p.");
    }

    #[test]
    fn would_be_innovative_matches_insert() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut b = EchelonBasis::<Gf256>::new(5);
        for _ in 0..30 {
            let row: Vec<Gf256> = (0..5).map(|_| Gf256::random(&mut rng)).collect();
            let predicted = b.would_be_innovative(&row);
            let actual = b.insert(row).is_innovative();
            assert_eq!(predicted, actual);
        }
    }

    #[test]
    fn augmented_solution_decodes_messages() {
        // 3 source messages of 2 symbols each; feed random combinations.
        let mut rng = StdRng::seed_from_u64(13);
        let k = 3;
        let r = 2;
        let msgs: Vec<Vec<Gf256>> = (0..k)
            .map(|_| (0..r).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mut b = EchelonBasis::<Gf256>::new(k);
        while !b.is_full() {
            // Random combination: coeffs + combined payload.
            let coeffs: Vec<Gf256> = (0..k).map(|_| Gf256::random(&mut rng)).collect();
            let mut row = coeffs.clone();
            for j in 0..r {
                let mut acc = Gf256::ZERO;
                for (i, m) in msgs.iter().enumerate() {
                    acc += coeffs[i] * m[j];
                }
                row.push(acc);
            }
            b.insert(row);
        }
        assert_eq!(b.solution().unwrap(), msgs);
    }

    #[test]
    fn solution_none_until_full() {
        let mut b = EchelonBasis::<Gf256>::new(2);
        assert!(b.solution().is_none());
        b.insert(vec![Gf256::ONE, Gf256::ZERO]);
        assert!(b.solution().is_none());
    }

    #[test]
    fn helpfulness_between_bases() {
        let mut x = EchelonBasis::<Gf256>::new(3);
        let mut y = EchelonBasis::<Gf256>::new(3);
        x.insert(unit(3, 0));
        y.insert(unit(3, 0));
        // Equal subspaces: not helpful.
        assert!(!y.is_helped_by(&x));
        x.insert(unit(3, 1));
        // x now strictly larger: helpful to y but not vice versa.
        assert!(y.is_helped_by(&x));
        assert!(!x.is_helped_by(&y));
    }

    #[test]
    fn insert_keeps_rows_reduced() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut b = EchelonBasis::<Gf256>::new(8);
        for _ in 0..40 {
            let row: Vec<Gf256> = (0..8).map(|_| Gf256::random(&mut rng)).collect();
            b.insert(row);
        }
        // Every pivot column must be zero in all other rows (Gauss-Jordan).
        for (c, &p) in b.pivots.iter().enumerate() {
            if let Some(ri) = p {
                for (j, row) in b.rows().iter().enumerate() {
                    if j != ri {
                        assert!(row[c].is_zero(), "column {c} not eliminated in row {j}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shorter than pivot width")]
    fn short_row_panics() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        b.insert(vec![Gf256::ONE]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn inconsistent_row_length_panics() {
        let mut b = EchelonBasis::<Gf256>::new(2);
        b.insert(vec![Gf256::ONE, Gf256::ZERO, Gf256::ONE]);
        b.insert(vec![Gf256::ONE, Gf256::ZERO]);
    }

    #[test]
    fn try_insert_reports_typed_errors_and_leaves_basis_intact() {
        let mut b = EchelonBasis::<Gf256>::new(2);
        assert_eq!(
            b.try_insert(vec![Gf256::ONE]),
            Err(BasisError::RowTooShort {
                len: 1,
                pivot_width: 2
            })
        );
        b.insert(vec![Gf256::ONE, Gf256::ZERO, Gf256::new(9)]);
        let before = b.clone();
        assert_eq!(
            b.try_insert(vec![Gf256::ONE, Gf256::ONE]),
            Err(BasisError::LengthMismatch {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(b, before, "failed insert must not mutate the basis");
        assert_eq!(
            b.try_insert_packed(vec![0u8; 3]),
            Ok(Insertion::Redundant),
            "aligned zero row is simply redundant"
        );
    }

    #[test]
    fn materialized_rows_round_trip_through_element_view() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        assert_eq!(b.coeff_rows().count(), 0);
        b.insert(vec![
            Gf256::new(5),
            Gf256::new(1),
            Gf256::new(2),
            Gf256::new(7),
        ]);
        b.insert(vec![
            Gf256::new(0),
            Gf256::new(3),
            Gf256::new(1),
            Gf256::new(8),
        ]);
        assert_eq!(b.row_bytes(), 4);
        assert_eq!(b.coeff_bytes(), 3);
        assert_eq!(b.pay_bytes(), 1);
        let mut buf = Vec::new();
        for i in 0..b.rank() {
            b.copy_packed_row_into(i, &mut buf);
            assert_eq!(Gf256::unpack(&buf), b.row(i));
            assert_eq!(&buf[..b.coeff_bytes()], b.coeff_row(i));
        }
        assert_eq!(b.rows().len(), 2);
    }

    #[test]
    fn interleaved_flush_matches_deferred_flush() {
        // Forcing materialization after every insert and deferring it to
        // the very end must yield identical bases and solutions: lazy
        // replay applies the same field ops eager elimination would.
        let mut rng = StdRng::seed_from_u64(21);
        let k = 6;
        let r = 5;
        let mut eager = EchelonBasis::<Gf256>::new(k);
        let mut lazy = EchelonBasis::<Gf256>::new(k);
        for _ in 0..3 * k {
            let row: Vec<Gf256> = (0..k + r).map(|_| Gf256::random(&mut rng)).collect();
            assert_eq!(eager.insert(row.clone()), lazy.insert(row));
            // `rows()` flushes `eager`'s payload ledger every step.
            let _ = eager.rows();
            assert_eq!(eager.rank(), lazy.rank());
        }
        assert_eq!(eager, lazy);
        assert_eq!(eager.solution(), lazy.solution());
    }

    #[test]
    fn accumulate_rows_into_matches_materialized_axpys() {
        let mut rng = StdRng::seed_from_u64(22);
        let k = 5;
        let r = 3;
        let mut b = EchelonBasis::<Gf256>::new(k);
        for _ in 0..k {
            let row: Vec<Gf256> = (0..k + r).map(|_| Gf256::random(&mut rng)).collect();
            b.insert(row);
        }
        let factors: Vec<Gf256> = (0..b.rank()).map(|_| Gf256::random(&mut rng)).collect();
        let packed_factors = Gf256::pack(&factors);
        let mut fused = vec![0u8; b.row_bytes()];
        b.accumulate_rows_into(&packed_factors, &mut fused);
        let mut want = vec![0u8; b.row_bytes()];
        let mut rowbuf = Vec::new();
        for (i, c) in factors.iter().enumerate() {
            b.copy_packed_row_into(i, &mut rowbuf);
            Gf256::mul_add_slice(*c, &rowbuf, &mut want);
        }
        assert_eq!(fused, want);
    }

    #[test]
    fn gf2_dense_decode() {
        // Full decode over GF(2) with payloads.
        let mut rng = StdRng::seed_from_u64(15);
        let k = 8;
        let msgs: Vec<Vec<Gf2>> = (0..k)
            .map(|_| (0..4).map(|_| Gf2::random(&mut rng)).collect())
            .collect();
        let mut b = EchelonBasis::<Gf2>::new(k);
        let mut inserted = 0;
        while !b.is_full() && inserted < 1000 {
            let coeffs: Vec<Gf2> = (0..k).map(|_| Gf2::random(&mut rng)).collect();
            let mut row = coeffs.clone();
            for j in 0..4 {
                let mut acc = Gf2::ZERO;
                for (i, m) in msgs.iter().enumerate() {
                    acc += coeffs[i] * m[j];
                }
                row.push(acc);
            }
            b.insert(row);
            inserted += 1;
        }
        assert_eq!(b.solution().unwrap(), msgs);
        // Expected insertions to fill GF(2) rank k is about k + 1.6.
        assert!(inserted < 100, "took {inserted} inserts");
        let _ = rng.gen::<u8>();
    }

    /// The blocked (transform-panel GEMM) replay schedule against the
    /// row-wise event replay, byte for byte, from every flush frontier —
    /// including the mid-suffix entry where rows `< flushed` are already
    /// materialized and enter the transform as unit rows.
    #[test]
    fn blocked_replay_matches_rowwise_from_every_frontier() {
        let mut rng = StdRng::seed_from_u64(23);
        // Shapes straddle the Auto thresholds and the kernel tile sizes:
        // tiny panels, odd payload widths, and a >16-deep pending suffix.
        for (k, r) in [(3usize, 5usize), (8, 64), (17, 37), (24, 200)] {
            let mut b = EchelonBasis::<Gf256>::new(k);
            for _ in 0..4 * k {
                let row: Vec<Gf256> = (0..k + r).map(|_| Gf256::random(&mut rng)).collect();
                b.insert(row);
            }
            let rank = b.rank();
            let pb = r;
            let led = b.ledger.borrow();
            assert_eq!(led.flushed, 0, "inserts must not flush");
            for frontier in 0..=rank {
                // Materialize rows < frontier row-wise on both copies,
                // then settle the rest through each schedule.
                let mut rowwise = led.pay.clone();
                for e in 0..frontier {
                    core_ops::replay_event::<Gf256>(&mut rowwise[..rank * pb], &led.log, e, pb);
                }
                let mut blocked = rowwise.clone();
                for e in frontier..rank {
                    core_ops::replay_event::<Gf256>(&mut rowwise[..rank * pb], &led.log, e, pb);
                }
                let (mut transform, mut panel) = (Vec::new(), Vec::new());
                core_ops::replay_blocked::<Gf256>(
                    &mut blocked[..rank * pb],
                    &led.log,
                    frontier,
                    rank,
                    pb,
                    &mut transform,
                    &mut panel,
                );
                assert_eq!(
                    rowwise, blocked,
                    "schedules diverged at k={k} r={r} frontier={frontier}"
                );
            }
        }
    }

    /// The Auto-mode schedule choice: deterministic in the basis state,
    /// row-wise for shallow/narrow/sparse pending suffixes, blocked for
    /// deep dense ones. (Both schedules are bit-identical — this pins the
    /// heuristic itself so the hot path is predictable.)
    #[test]
    fn auto_mode_picks_blocked_only_for_deep_dense_suffixes() {
        use crate::ReplayMode;
        let deep = core_ops::BLOCKED_MIN_PENDING;
        let wide = core_ops::BLOCKED_MIN_PAY_BYTES;
        let dense_log = vec![0xABu8; core_ops::log_offset::<Gf256>(2 * deep)];
        let sparse_log = vec![0u8; core_ops::log_offset::<Gf256>(2 * deep)];
        let pick = |mode, rank, flushed, pb, log: &[u8]| {
            core_ops::use_blocked::<Gf256>(mode, rank, flushed, pb, log)
        };
        // Forced modes ignore the heuristic entirely.
        assert!(pick(ReplayMode::Blocked, 1, 0, 1, &dense_log));
        assert!(!pick(ReplayMode::Rowwise, 2 * deep, 0, wide, &dense_log));
        // Auto: deep + wide + dense → blocked.
        assert!(pick(ReplayMode::Auto, 2 * deep, 0, wide, &dense_log));
        // Too shallow a suffix, too narrow a row, or a mostly-flushed
        // basis (pending < rank/2) stays row-wise…
        assert!(!pick(
            ReplayMode::Auto,
            2 * deep,
            2 * deep - deep + 1,
            wide,
            &dense_log
        ));
        assert!(!pick(ReplayMode::Auto, deep - 1, 0, wide, &dense_log));
        assert!(!pick(ReplayMode::Auto, 2 * deep, 0, wide - 1, &dense_log));
        // …and so does a sparse log (a source node's identity inserts):
        // row-wise replay skips zero multipliers in O(rank).
        assert!(!pick(ReplayMode::Auto, 2 * deep, 0, wide, &sparse_log));
    }
}
