//! Incremental row-echelon basis: the RLNC decoder hot path.
//!
//! Rows are stored as one contiguous slab of packed bytes (see
//! [`ag_gf::slab`]) and every elimination step runs through the
//! [`SlabField`] bulk kernels — runtime-dispatched through the
//! `ag_gf::Kernel` ladder (product tables / SWAR / SIMD) for GF(2⁸) and
//! GF(2⁴), and a pure `u64`-chunked XOR for GF(2). The elimination itself
//! lives in the `core_ops` functions shared with [`crate::BasisArena`],
//! the simulation-wide arena that holds every node's basis in one
//! preallocated slab — so the owned and arena-backed bases are
//! bit-identical by construction. The scalar predecessor is preserved as
//! [`crate::reference::ScalarBasis`] and a differential test suite in
//! `ag-rlnc` pins all of them to identical behaviour.

use std::error::Error;
use std::fmt;
use std::marker::PhantomData;

use ag_gf::SlabField;

/// Outcome of inserting one equation into an [`EchelonBasis`].
///
/// In the paper's vocabulary (Definition 3), an [`Insertion::Innovative`]
/// row is a *helpful message*: it increased the rank of the node that
/// received it. A [`Insertion::Redundant`] row was already in the span and
/// is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insertion {
    /// The row increased the rank of the basis.
    Innovative,
    /// The row was linearly dependent on the existing basis and was dropped.
    Redundant,
}

impl Insertion {
    /// True for [`Insertion::Innovative`].
    #[must_use]
    pub fn is_innovative(self) -> bool {
        matches!(self, Insertion::Innovative)
    }
}

/// A malformed row rejected by [`EchelonBasis::try_insert`] before any
/// elimination ran — the basis is untouched when one of these is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisError {
    /// The row has fewer entries than the pivot width.
    RowTooShort {
        /// Entries in the offending row.
        len: usize,
        /// Required minimum (the basis's pivot width).
        pivot_width: usize,
    },
    /// The row's length differs from the rows already stored.
    LengthMismatch {
        /// Symbols per stored row.
        expected: usize,
        /// Symbols in the offending row.
        got: usize,
    },
    /// A packed row's byte length is not a multiple of the symbol size.
    Misaligned {
        /// Byte length of the offending slab.
        len: usize,
        /// Bytes per symbol for this field.
        symbol_bytes: usize,
    },
}

impl fmt::Display for BasisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BasisError::RowTooShort { len, pivot_width } => {
                write!(
                    f,
                    "row of length {len} shorter than pivot width {pivot_width}"
                )
            }
            BasisError::LengthMismatch { expected, got } => write!(
                f,
                "row has {got} symbols but stored rows have {expected} \
                 (all rows in a basis must have equal length)"
            ),
            BasisError::Misaligned { len, symbol_bytes } => write!(
                f,
                "packed row of {len} bytes is not a multiple of the \
                 {symbol_bytes}-byte symbol size"
            ),
        }
    }
}

impl Error for BasisError {}

/// The shared Gauss–Jordan elimination core.
///
/// Both [`EchelonBasis`] (one growing basis, `Vec`-backed) and
/// [`crate::BasisArena`] (all of a simulation's bases in one preallocated
/// slab) run their eliminations through these functions, so the two are
/// bit-identical by construction — the property the golden-trajectory and
/// differential suites pin end to end.
pub(crate) mod core_ops {
    use ag_gf::SlabField;

    /// Reads the symbol in column `c` of a packed row.
    #[inline]
    pub(crate) fn col<F: SlabField>(row: &[u8], c: usize) -> F {
        F::read_symbol(&row[c * F::SYMBOL_BYTES..])
    }

    /// Reduces `row` in place against the stored rows.
    ///
    /// `storage` holds the stored rows contiguously (`row_bytes` each, in
    /// insertion order) and `pivots[c]` names the stored row with pivot
    /// column `c`. With `full = false` the walk stops at the first nonzero
    /// coefficient in a pivot-free column and returns it (the cheap
    /// would-be-innovative probe); with `full = true` every pivot column is
    /// eliminated and the *leading* pivot-free column is returned, leaving
    /// `row` ready to store. `None` means the row was annihilated — it was
    /// already in the span. `row` may be a pivot-prefix-only slab shorter
    /// than the stored rows.
    pub(crate) fn reduce<F: SlabField>(
        pivots: &[Option<usize>],
        storage: &[u8],
        row_bytes: usize,
        row: &mut [u8],
        full: bool,
    ) -> Option<usize> {
        let mut lead = None;
        for (c, pivot) in pivots.iter().enumerate() {
            let x = col::<F>(row, c);
            if x.is_zero() {
                continue;
            }
            match *pivot {
                Some(ri) => {
                    // Eliminate column c using the stored (normalized) row:
                    // row += (-x) · stored, i.e. row -= x · stored.
                    let stored = &storage[ri * row_bytes..(ri + 1) * row_bytes];
                    F::mul_add_slice(-x, &stored[..row.len()], row);
                    debug_assert!(col::<F>(row, c).is_zero());
                }
                None if full => {
                    if lead.is_none() {
                        lead = Some(c);
                    }
                }
                None => return Some(c),
            }
        }
        lead
    }

    /// Normalizes a fully reduced `row` (pivot entry becomes 1) and
    /// back-substitutes it into every stored row so the basis stays in
    /// reduced (Gauss–Jordan) form. The caller then appends `row` as the
    /// newest stored row.
    pub(crate) fn normalize_and_back_substitute<F: SlabField>(
        storage: &mut [u8],
        row_bytes: usize,
        rank: usize,
        pivot_col: usize,
        row: &mut [u8],
    ) {
        let pinv = col::<F>(row, pivot_col).inv().expect("pivot is nonzero");
        F::mul_slice(pinv, row);
        for r in 0..rank {
            let stored = &mut storage[r * row_bytes..(r + 1) * row_bytes];
            let factor = col::<F>(stored, pivot_col);
            if !factor.is_zero() {
                F::mul_add_slice(-factor, row, stored);
            }
        }
    }
}

/// A growing row-echelon basis of vectors of fixed width over `F`.
///
/// Rows may carry an *augmented tail* (e.g. RLNC payload symbols) beyond the
/// `pivot_width` leading coefficients: only the leading `pivot_width`
/// entries participate in pivot selection, but eliminations are applied to
/// entire rows, so the tail stays consistent with the coefficient part.
/// This is exactly Gauss–Jordan decoding of a network-coded generation.
///
/// Inserting a row costs `O(rank · width)` symbol operations, executed as
/// packed-slab axpys over the contiguous row storage. For simulations that
/// hold one basis per node, [`crate::BasisArena`] provides the same
/// elimination (literally the same `core_ops` code) over a single
/// preallocated storage slab shared by all nodes.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf256};
/// use ag_linalg::{EchelonBasis, Insertion};
///
/// let mut basis = EchelonBasis::<Gf256>::new(3);
/// let e0 = vec![Gf256::ONE, Gf256::ZERO, Gf256::ZERO];
/// assert_eq!(basis.insert(e0.clone()), Insertion::Innovative);
/// assert_eq!(basis.insert(e0), Insertion::Redundant);
/// assert_eq!(basis.rank(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EchelonBasis<F> {
    /// Width of the pivot (coefficient) prefix of every row.
    pivot_width: usize,
    /// Symbols per stored row (pivot prefix + augmented tail); fixed by the
    /// first stored row.
    row_elems: Option<usize>,
    /// `pivots[c]` = index of the stored row whose pivot is column `c`.
    pivots: Vec<Option<usize>>,
    /// Independent rows stored so far.
    rank: usize,
    /// All rows, packed and contiguous: row `i` occupies
    /// `storage[i * row_bytes .. (i + 1) * row_bytes]`.
    storage: Vec<u8>,
    /// Reusable reduction buffer for the borrowing insert path
    /// ([`EchelonBasis::try_insert_packed_slice`]); purely transient, not
    /// part of the basis's logical state (excluded from `PartialEq`).
    scratch: Vec<u8>,
    _field: PhantomData<F>,
}

/// Logical-state equality: two bases are equal iff they store the same
/// rows with the same pivots — the transient `scratch` buffer never
/// participates.
impl<F> PartialEq for EchelonBasis<F> {
    fn eq(&self, other: &Self) -> bool {
        self.pivot_width == other.pivot_width
            && self.row_elems == other.row_elems
            && self.pivots == other.pivots
            && self.rank == other.rank
            && self.storage == other.storage
    }
}

impl<F> Eq for EchelonBasis<F> {}

impl<F: SlabField> EchelonBasis<F> {
    /// Creates an empty basis whose rows have `pivot_width` leading
    /// coefficient entries.
    #[must_use]
    pub fn new(pivot_width: usize) -> Self {
        EchelonBasis {
            pivot_width,
            row_elems: None,
            pivots: vec![None; pivot_width],
            rank: 0,
            storage: Vec::new(),
            scratch: Vec::new(),
            _field: PhantomData,
        }
    }

    /// The number of independent rows stored so far.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The pivot (coefficient) width rows must have at minimum.
    #[must_use]
    pub fn pivot_width(&self) -> usize {
        self.pivot_width
    }

    /// True once the basis spans the full coefficient space.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.rank == self.pivot_width
    }

    /// Bytes per stored row (0 before the first row is stored).
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_elems.unwrap_or(0) * F::SYMBOL_BYTES
    }

    /// Row `i` as a packed byte slab.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    #[must_use]
    pub fn packed_row(&self, i: usize) -> &[u8] {
        assert!(i < self.rank, "row index out of bounds");
        let rb = self.row_bytes();
        &self.storage[i * rb..(i + 1) * rb]
    }

    /// Iterates over the stored rows as packed byte slabs, in insertion
    /// order.
    pub fn packed_rows(&self) -> impl Iterator<Item = &[u8]> {
        // `max(1)` only matters for the empty basis, where storage is empty
        // anyway; a nonempty basis always has positive row_bytes.
        self.storage
            .chunks_exact(self.row_bytes().max(1))
            .take(self.rank)
    }

    /// Row `i` decoded back to field elements.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    #[must_use]
    pub fn row(&self, i: usize) -> Vec<F> {
        F::unpack(self.packed_row(i))
    }

    /// All stored rows, materialized as element vectors. Prefer
    /// [`EchelonBasis::packed_rows`] on hot paths.
    #[must_use]
    pub fn rows(&self) -> Vec<Vec<F>> {
        self.packed_rows().map(|r| F::unpack(r)).collect()
    }

    /// Reads the symbol in column `c` of a packed row.
    #[inline]
    fn col(row: &[u8], c: usize) -> F {
        core_ops::col::<F>(row, c)
    }

    /// Reduces `row` against the basis in place, stopping at the first
    /// nonzero coefficient in a pivot-free column. Returns that column, or
    /// `None` if the row is annihilated (i.e. is in the span). Cheap check
    /// used by [`EchelonBasis::would_be_innovative`]. `row` may be a
    /// pivot-prefix-only slab shorter than the stored rows.
    fn reduce(&self, row: &mut [u8]) -> Option<usize> {
        core_ops::reduce::<F>(&self.pivots, &self.storage, self.row_bytes(), row, false)
    }

    /// Fully reduces `row` against *every* pivot column (not just those up
    /// to the leading one), returning the leading pivot-free column if the
    /// row survives. Required before storing a row so the basis remains in
    /// reduced (Gauss–Jordan) form.
    fn reduce_full(&self, row: &mut [u8]) -> Option<usize> {
        core_ops::reduce::<F>(&self.pivots, &self.storage, self.row_bytes(), row, true)
    }

    /// Inserts an equation. Returns whether it was innovative.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() < pivot_width`, or if its length differs from
    /// previously inserted rows. Use [`EchelonBasis::try_insert`] for a
    /// typed error instead.
    pub fn insert(&mut self, row: Vec<F>) -> Insertion {
        match self.try_insert(row) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Inserts an equation, rejecting malformed rows with a typed error
    /// *before* any elimination runs — the basis is unchanged on `Err`.
    ///
    /// # Errors
    ///
    /// [`BasisError::RowTooShort`] when `row.len() < pivot_width`;
    /// [`BasisError::LengthMismatch`] when the length differs from the rows
    /// already stored.
    pub fn try_insert(&mut self, row: Vec<F>) -> Result<Insertion, BasisError> {
        self.validate(row.len())?;
        Ok(self.insert_validated(F::pack(&row)))
    }

    /// Like [`EchelonBasis::try_insert`] but accepting an already-packed
    /// row slab — the zero-conversion entry point the RLNC decoder uses.
    ///
    /// # Errors
    ///
    /// The [`EchelonBasis::try_insert`] errors, plus
    /// [`BasisError::Misaligned`] when `row.len()` is not a multiple of
    /// [`SlabField::SYMBOL_BYTES`].
    pub fn try_insert_packed(&mut self, row: Vec<u8>) -> Result<Insertion, BasisError> {
        if !row.len().is_multiple_of(F::SYMBOL_BYTES) {
            return Err(BasisError::Misaligned {
                len: row.len(),
                symbol_bytes: F::SYMBOL_BYTES,
            });
        }
        self.validate(row.len() / F::SYMBOL_BYTES)?;
        Ok(self.insert_validated(row))
    }

    /// Like [`EchelonBasis::try_insert_packed`] but *borrowing* the row:
    /// the bytes are copied into an internal reusable scratch buffer and
    /// reduced there, so a redundant insertion costs **zero heap
    /// allocations** once the scratch has warmed up — the contract the
    /// engine's redundant-reception path relies on.
    ///
    /// # Errors
    ///
    /// Exactly the [`EchelonBasis::try_insert_packed`] errors; the basis
    /// (its logical state — `scratch` is transient) is unchanged on `Err`
    /// *and* on a redundant insert.
    pub fn try_insert_packed_slice(&mut self, row: &[u8]) -> Result<Insertion, BasisError> {
        if !row.len().is_multiple_of(F::SYMBOL_BYTES) {
            return Err(BasisError::Misaligned {
                len: row.len(),
                symbol_bytes: F::SYMBOL_BYTES,
            });
        }
        self.validate(row.len() / F::SYMBOL_BYTES)?;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(row);
        let outcome = self.insert_validated_slice(&mut scratch);
        self.scratch = scratch;
        Ok(outcome)
    }

    /// Shape checks shared by every insertion entry point.
    fn validate(&self, elems: usize) -> Result<(), BasisError> {
        if elems < self.pivot_width {
            return Err(BasisError::RowTooShort {
                len: elems,
                pivot_width: self.pivot_width,
            });
        }
        if let Some(expected) = self.row_elems {
            if elems != expected {
                return Err(BasisError::LengthMismatch {
                    expected,
                    got: elems,
                });
            }
        }
        Ok(())
    }

    /// The elimination core; `row` is packed and already shape-checked.
    fn insert_validated(&mut self, mut row: Vec<u8>) -> Insertion {
        self.insert_validated_slice(&mut row)
    }

    /// Borrowed-buffer elimination core: reduces `row` in place and, when
    /// innovative, copies it into the contiguous storage. The caller's
    /// buffer is clobbered either way (it ends up reduced/normalized).
    fn insert_validated_slice(&mut self, row: &mut [u8]) -> Insertion {
        let Some(pivot_col) = self.reduce_full(row) else {
            return Insertion::Redundant;
        };
        let rb = row.len();
        core_ops::normalize_and_back_substitute::<F>(
            &mut self.storage,
            rb,
            self.rank,
            pivot_col,
            row,
        );
        self.pivots[pivot_col] = Some(self.rank);
        self.row_elems = Some(rb / F::SYMBOL_BYTES);
        self.storage.extend_from_slice(row);
        self.rank += 1;
        Insertion::Innovative
    }

    /// Would `row` be innovative, without mutating the basis?
    ///
    /// This implements the paper's helpfulness check: node `x` is a
    /// *helpful node* for node `y` iff some vector in `x`'s subspace is
    /// independent of `y`'s subspace.
    #[must_use]
    pub fn would_be_innovative(&self, row: &[F]) -> bool {
        assert!(row.len() >= self.pivot_width);
        let mut packed = F::pack(row);
        self.reduce(&mut packed).is_some()
    }

    /// Packed-slab variant of [`EchelonBasis::would_be_innovative`].
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the packed pivot prefix.
    #[must_use]
    pub fn would_be_innovative_packed(&self, row: &[u8]) -> bool {
        assert!(row.len() >= self.pivot_width * F::SYMBOL_BYTES);
        let mut tmp = row.to_vec();
        self.reduce(&mut tmp).is_some()
    }

    /// True iff `other`'s span contains a vector outside `self`'s span,
    /// i.e. `other` (as a node) is helpful to `self`.
    #[must_use]
    pub fn is_helped_by(&self, other: &EchelonBasis<F>) -> bool {
        let prefix = self.pivot_width * F::SYMBOL_BYTES;
        other
            .packed_rows()
            .any(|r| self.would_be_innovative_packed(&r[..prefix.min(r.len())]))
    }

    /// Once full, extracts the solution: row `i` of the result is the tail
    /// (augmented part) of the equation whose coefficient vector is the
    /// `i`-th unit vector. Returns `None` while rank < pivot width.
    ///
    /// With RLNC augmentation the tails are exactly the decoded source
    /// messages.
    #[must_use]
    pub fn solution(&self) -> Option<Vec<Vec<F>>> {
        if !self.is_full() {
            return None;
        }
        let prefix = self.pivot_width * F::SYMBOL_BYTES;
        let mut out = Vec::with_capacity(self.pivot_width);
        for c in 0..self.pivot_width {
            let ri = self.pivots[c].expect("full basis has all pivots");
            let row = self.packed_row(ri);
            debug_assert!(
                (0..self.pivot_width).all(|j| {
                    let v = Self::col(row, j);
                    if j == c {
                        v == F::ONE
                    } else {
                        v.is_zero()
                    }
                }),
                "fully reduced basis rows must be unit vectors"
            );
            out.push(F::unpack(&row[prefix..]));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Field, Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(width: usize, i: usize) -> Vec<Gf256> {
        let mut v = vec![Gf256::ZERO; width];
        v[i] = Gf256::ONE;
        v
    }

    #[test]
    fn unit_vectors_fill_basis() {
        let mut b = EchelonBasis::<Gf256>::new(4);
        for i in 0..4 {
            assert!(!b.is_full());
            assert_eq!(b.insert(unit(4, i)), Insertion::Innovative);
        }
        assert!(b.is_full());
        assert_eq!(b.rank(), 4);
    }

    #[test]
    fn dependent_row_is_redundant() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        b.insert(vec![Gf256::new(1), Gf256::new(2), Gf256::new(3)]);
        b.insert(vec![Gf256::new(0), Gf256::new(1), Gf256::new(1)]);
        // Sum of the two inserted rows (GF(2^8) addition = XOR of bytes).
        let dep = vec![Gf256::new(1), Gf256::new(3), Gf256::new(2)];
        assert_eq!(b.insert(dep), Insertion::Redundant);
        assert_eq!(b.rank(), 2);
    }

    #[test]
    fn zero_row_is_redundant() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        assert_eq!(b.insert(vec![Gf256::ZERO; 3]), Insertion::Redundant);
        assert_eq!(b.rank(), 0);
    }

    #[test]
    fn rank_never_exceeds_width_under_random_inserts() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = EchelonBasis::<Gf2>::new(6);
        for _ in 0..100 {
            let row: Vec<Gf2> = (0..6).map(|_| Gf2::random(&mut rng)).collect();
            b.insert(row);
            assert!(b.rank() <= 6);
        }
        assert!(b.is_full(), "100 random GF(2) rows fill rank 6 w.h.p.");
    }

    #[test]
    fn would_be_innovative_matches_insert() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut b = EchelonBasis::<Gf256>::new(5);
        for _ in 0..30 {
            let row: Vec<Gf256> = (0..5).map(|_| Gf256::random(&mut rng)).collect();
            let predicted = b.would_be_innovative(&row);
            let actual = b.insert(row).is_innovative();
            assert_eq!(predicted, actual);
        }
    }

    #[test]
    fn augmented_solution_decodes_messages() {
        // 3 source messages of 2 symbols each; feed random combinations.
        let mut rng = StdRng::seed_from_u64(13);
        let k = 3;
        let r = 2;
        let msgs: Vec<Vec<Gf256>> = (0..k)
            .map(|_| (0..r).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mut b = EchelonBasis::<Gf256>::new(k);
        while !b.is_full() {
            // Random combination: coeffs + combined payload.
            let coeffs: Vec<Gf256> = (0..k).map(|_| Gf256::random(&mut rng)).collect();
            let mut row = coeffs.clone();
            for j in 0..r {
                let mut acc = Gf256::ZERO;
                for (i, m) in msgs.iter().enumerate() {
                    acc += coeffs[i] * m[j];
                }
                row.push(acc);
            }
            b.insert(row);
        }
        assert_eq!(b.solution().unwrap(), msgs);
    }

    #[test]
    fn solution_none_until_full() {
        let mut b = EchelonBasis::<Gf256>::new(2);
        assert!(b.solution().is_none());
        b.insert(vec![Gf256::ONE, Gf256::ZERO]);
        assert!(b.solution().is_none());
    }

    #[test]
    fn helpfulness_between_bases() {
        let mut x = EchelonBasis::<Gf256>::new(3);
        let mut y = EchelonBasis::<Gf256>::new(3);
        x.insert(unit(3, 0));
        y.insert(unit(3, 0));
        // Equal subspaces: not helpful.
        assert!(!y.is_helped_by(&x));
        x.insert(unit(3, 1));
        // x now strictly larger: helpful to y but not vice versa.
        assert!(y.is_helped_by(&x));
        assert!(!x.is_helped_by(&y));
    }

    #[test]
    fn insert_keeps_rows_reduced() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut b = EchelonBasis::<Gf256>::new(8);
        for _ in 0..40 {
            let row: Vec<Gf256> = (0..8).map(|_| Gf256::random(&mut rng)).collect();
            b.insert(row);
        }
        // Every pivot column must be zero in all other rows (Gauss-Jordan).
        for (c, &p) in b.pivots.iter().enumerate() {
            if let Some(ri) = p {
                for (j, row) in b.rows().iter().enumerate() {
                    if j != ri {
                        assert!(row[c].is_zero(), "column {c} not eliminated in row {j}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shorter than pivot width")]
    fn short_row_panics() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        b.insert(vec![Gf256::ONE]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn inconsistent_row_length_panics() {
        let mut b = EchelonBasis::<Gf256>::new(2);
        b.insert(vec![Gf256::ONE, Gf256::ZERO, Gf256::ONE]);
        b.insert(vec![Gf256::ONE, Gf256::ZERO]);
    }

    #[test]
    fn try_insert_reports_typed_errors_and_leaves_basis_intact() {
        let mut b = EchelonBasis::<Gf256>::new(2);
        assert_eq!(
            b.try_insert(vec![Gf256::ONE]),
            Err(BasisError::RowTooShort {
                len: 1,
                pivot_width: 2
            })
        );
        b.insert(vec![Gf256::ONE, Gf256::ZERO, Gf256::new(9)]);
        let before = b.clone();
        assert_eq!(
            b.try_insert(vec![Gf256::ONE, Gf256::ONE]),
            Err(BasisError::LengthMismatch {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(b, before, "failed insert must not mutate the basis");
        assert_eq!(
            b.try_insert_packed(vec![0u8; 3]),
            Ok(Insertion::Redundant),
            "aligned zero row is simply redundant"
        );
    }

    #[test]
    fn packed_rows_round_trip_through_element_view() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        assert_eq!(b.packed_rows().count(), 0);
        b.insert(vec![
            Gf256::new(5),
            Gf256::new(1),
            Gf256::new(2),
            Gf256::new(7),
        ]);
        b.insert(vec![
            Gf256::new(0),
            Gf256::new(3),
            Gf256::new(1),
            Gf256::new(8),
        ]);
        assert_eq!(b.row_bytes(), 4);
        for (i, packed) in b.packed_rows().enumerate() {
            assert_eq!(Gf256::unpack(packed), b.row(i));
            assert_eq!(packed, b.packed_row(i));
        }
        assert_eq!(b.rows().len(), 2);
    }

    #[test]
    fn gf2_dense_decode() {
        // Full decode over GF(2) with payloads.
        let mut rng = StdRng::seed_from_u64(15);
        let k = 8;
        let msgs: Vec<Vec<Gf2>> = (0..k)
            .map(|_| (0..4).map(|_| Gf2::random(&mut rng)).collect())
            .collect();
        let mut b = EchelonBasis::<Gf2>::new(k);
        let mut inserted = 0;
        while !b.is_full() && inserted < 1000 {
            let coeffs: Vec<Gf2> = (0..k).map(|_| Gf2::random(&mut rng)).collect();
            let mut row = coeffs.clone();
            for j in 0..4 {
                let mut acc = Gf2::ZERO;
                for (i, m) in msgs.iter().enumerate() {
                    acc += coeffs[i] * m[j];
                }
                row.push(acc);
            }
            b.insert(row);
            inserted += 1;
        }
        assert_eq!(b.solution().unwrap(), msgs);
        // Expected insertions to fill GF(2) rank k is about k + 1.6.
        assert!(inserted < 100, "took {inserted} inserts");
        let _ = rng.gen::<u8>();
    }
}
