//! Incremental row-echelon basis: the RLNC decoder hot path.

use ag_gf::Field;

/// Outcome of inserting one equation into an [`EchelonBasis`].
///
/// In the paper's vocabulary (Definition 3), an [`Insertion::Innovative`]
/// row is a *helpful message*: it increased the rank of the node that
/// received it. A [`Insertion::Redundant`] row was already in the span and
/// is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insertion {
    /// The row increased the rank of the basis.
    Innovative,
    /// The row was linearly dependent on the existing basis and was dropped.
    Redundant,
}

impl Insertion {
    /// True for [`Insertion::Innovative`].
    #[must_use]
    pub fn is_innovative(self) -> bool {
        matches!(self, Insertion::Innovative)
    }
}

/// A growing row-echelon basis of vectors of fixed width over `F`.
///
/// Rows may carry an *augmented tail* (e.g. RLNC payload symbols) beyond the
/// `pivot_width` leading coefficients: only the leading `pivot_width`
/// entries participate in pivot selection, but eliminations are applied to
/// entire rows, so the tail stays consistent with the coefficient part.
/// This is exactly Gauss–Jordan decoding of a network-coded generation.
///
/// Inserting a row costs `O(rank · width)`.
///
/// # Examples
///
/// ```
/// use ag_gf::{Field, Gf256};
/// use ag_linalg::{EchelonBasis, Insertion};
///
/// let mut basis = EchelonBasis::<Gf256>::new(3);
/// let e0 = vec![Gf256::ONE, Gf256::ZERO, Gf256::ZERO];
/// assert_eq!(basis.insert(e0.clone()), Insertion::Innovative);
/// assert_eq!(basis.insert(e0), Insertion::Redundant);
/// assert_eq!(basis.rank(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EchelonBasis<F> {
    /// Width of the pivot (coefficient) prefix of every row.
    pivot_width: usize,
    /// `pivots[c]` = index into `rows` of the row whose pivot is column `c`.
    pivots: Vec<Option<usize>>,
    /// Rows in reduced form. Row lengths are `pivot_width + tail` where the
    /// tail length is fixed by the first inserted row.
    rows: Vec<Vec<F>>,
}

impl<F: Field> EchelonBasis<F> {
    /// Creates an empty basis whose rows have `pivot_width` leading
    /// coefficient entries.
    #[must_use]
    pub fn new(pivot_width: usize) -> Self {
        EchelonBasis {
            pivot_width,
            pivots: vec![None; pivot_width],
            rows: Vec::new(),
        }
    }

    /// The number of independent rows stored so far.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// The pivot (coefficient) width rows must have at minimum.
    #[must_use]
    pub fn pivot_width(&self) -> usize {
        self.pivot_width
    }

    /// True once the basis spans the full coefficient space.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.rank() == self.pivot_width
    }

    /// The stored (reduced) rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<F>] {
        &self.rows
    }

    /// Reduces `row` against the basis in place, stopping at the first
    /// nonzero coefficient in a pivot-free column. Returns that column, or
    /// `None` if the row is annihilated (i.e. is in the span). Cheap check
    /// used by [`EchelonBasis::would_be_innovative`].
    fn reduce(&self, row: &mut [F]) -> Option<usize> {
        for c in 0..self.pivot_width {
            if row[c].is_zero() {
                continue;
            }
            match self.pivots[c] {
                Some(ri) => {
                    // Eliminate column c using the stored (normalized) row.
                    let factor = row[c];
                    let stored = &self.rows[ri];
                    for (x, &s) in row.iter_mut().zip(stored) {
                        *x -= factor * s;
                    }
                    debug_assert!(row[c].is_zero());
                }
                None => return Some(c),
            }
        }
        None
    }

    /// Fully reduces `row` against *every* pivot column (not just those up
    /// to the leading one), returning the leading pivot-free column if the
    /// row survives. Required before storing a row so the basis remains in
    /// reduced (Gauss–Jordan) form.
    fn reduce_full(&self, row: &mut [F]) -> Option<usize> {
        let mut lead = None;
        for c in 0..self.pivot_width {
            if row[c].is_zero() {
                continue;
            }
            match self.pivots[c] {
                Some(ri) => {
                    let factor = row[c];
                    let stored = &self.rows[ri];
                    for (x, &s) in row.iter_mut().zip(stored) {
                        *x -= factor * s;
                    }
                    debug_assert!(row[c].is_zero());
                }
                None => {
                    if lead.is_none() {
                        lead = Some(c);
                    }
                }
            }
        }
        lead
    }

    /// Inserts an equation. Returns whether it was innovative.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() < pivot_width`, or if its length differs from
    /// previously inserted rows.
    pub fn insert(&mut self, mut row: Vec<F>) -> Insertion {
        assert!(
            row.len() >= self.pivot_width,
            "row of length {} shorter than pivot width {}",
            row.len(),
            self.pivot_width
        );
        if let Some(first) = self.rows.first() {
            assert_eq!(
                row.len(),
                first.len(),
                "all rows in a basis must have equal length"
            );
        }
        let Some(pivot_col) = self.reduce_full(&mut row) else {
            return Insertion::Redundant;
        };
        // Normalize so the pivot entry is 1.
        let pinv = row[pivot_col].inv().expect("pivot is nonzero");
        for x in &mut row {
            *x *= pinv;
        }
        // Back-substitute into existing rows to keep the basis fully reduced.
        for r in &mut self.rows {
            let factor = r[pivot_col];
            if !factor.is_zero() {
                for (x, &s) in r.iter_mut().zip(&row) {
                    *x -= factor * s;
                }
            }
        }
        self.pivots[pivot_col] = Some(self.rows.len());
        self.rows.push(row);
        Insertion::Innovative
    }

    /// Would `row` be innovative, without mutating the basis?
    ///
    /// This implements the paper's helpfulness check: node `x` is a
    /// *helpful node* for node `y` iff some vector in `x`'s subspace is
    /// independent of `y`'s subspace.
    #[must_use]
    pub fn would_be_innovative(&self, row: &[F]) -> bool {
        assert!(row.len() >= self.pivot_width);
        let mut tmp = row.to_vec();
        self.reduce(&mut tmp).is_some()
    }

    /// True iff `other`'s span contains a vector outside `self`'s span,
    /// i.e. `other` (as a node) is helpful to `self`.
    #[must_use]
    pub fn is_helped_by(&self, other: &EchelonBasis<F>) -> bool {
        other
            .rows
            .iter()
            .any(|r| self.would_be_innovative(&r[..self.pivot_width.min(r.len())]))
    }

    /// Once full, extracts the solution: row `i` of the result is the tail
    /// (augmented part) of the equation whose coefficient vector is the
    /// `i`-th unit vector. Returns `None` while rank < pivot width.
    ///
    /// With RLNC augmentation the tails are exactly the decoded source
    /// messages.
    #[must_use]
    pub fn solution(&self) -> Option<Vec<Vec<F>>> {
        if !self.is_full() {
            return None;
        }
        let mut out = Vec::with_capacity(self.pivot_width);
        for c in 0..self.pivot_width {
            let ri = self.pivots[c].expect("full basis has all pivots");
            let row = &self.rows[ri];
            debug_assert!(
                row[..self.pivot_width]
                    .iter()
                    .enumerate()
                    .all(|(j, &v)| if j == c { v == F::ONE } else { v.is_zero() }),
                "fully reduced basis rows must be unit vectors"
            );
            out.push(row[self.pivot_width..].to_vec());
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::{Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit(width: usize, i: usize) -> Vec<Gf256> {
        let mut v = vec![Gf256::ZERO; width];
        v[i] = Gf256::ONE;
        v
    }

    #[test]
    fn unit_vectors_fill_basis() {
        let mut b = EchelonBasis::<Gf256>::new(4);
        for i in 0..4 {
            assert!(!b.is_full());
            assert_eq!(b.insert(unit(4, i)), Insertion::Innovative);
        }
        assert!(b.is_full());
        assert_eq!(b.rank(), 4);
    }

    #[test]
    fn dependent_row_is_redundant() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        b.insert(vec![Gf256::new(1), Gf256::new(2), Gf256::new(3)]);
        b.insert(vec![Gf256::new(0), Gf256::new(1), Gf256::new(1)]);
        // Sum of the two inserted rows (GF(2^8) addition = XOR of bytes).
        let dep = vec![Gf256::new(1), Gf256::new(3), Gf256::new(2)];
        assert_eq!(b.insert(dep), Insertion::Redundant);
        assert_eq!(b.rank(), 2);
    }

    #[test]
    fn zero_row_is_redundant() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        assert_eq!(b.insert(vec![Gf256::ZERO; 3]), Insertion::Redundant);
        assert_eq!(b.rank(), 0);
    }

    #[test]
    fn rank_never_exceeds_width_under_random_inserts() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = EchelonBasis::<Gf2>::new(6);
        for _ in 0..100 {
            let row: Vec<Gf2> = (0..6).map(|_| Gf2::random(&mut rng)).collect();
            b.insert(row);
            assert!(b.rank() <= 6);
        }
        assert!(b.is_full(), "100 random GF(2) rows fill rank 6 w.h.p.");
    }

    #[test]
    fn would_be_innovative_matches_insert() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut b = EchelonBasis::<Gf256>::new(5);
        for _ in 0..30 {
            let row: Vec<Gf256> = (0..5).map(|_| Gf256::random(&mut rng)).collect();
            let predicted = b.would_be_innovative(&row);
            let actual = b.insert(row).is_innovative();
            assert_eq!(predicted, actual);
        }
    }

    #[test]
    fn augmented_solution_decodes_messages() {
        // 3 source messages of 2 symbols each; feed random combinations.
        let mut rng = StdRng::seed_from_u64(13);
        let k = 3;
        let r = 2;
        let msgs: Vec<Vec<Gf256>> = (0..k)
            .map(|_| (0..r).map(|_| Gf256::random(&mut rng)).collect())
            .collect();
        let mut b = EchelonBasis::<Gf256>::new(k);
        while !b.is_full() {
            // Random combination: coeffs + combined payload.
            let coeffs: Vec<Gf256> = (0..k).map(|_| Gf256::random(&mut rng)).collect();
            let mut row = coeffs.clone();
            for j in 0..r {
                let mut acc = Gf256::ZERO;
                for (i, m) in msgs.iter().enumerate() {
                    acc += coeffs[i] * m[j];
                }
                row.push(acc);
            }
            b.insert(row);
        }
        assert_eq!(b.solution().unwrap(), msgs);
    }

    #[test]
    fn solution_none_until_full() {
        let mut b = EchelonBasis::<Gf256>::new(2);
        assert!(b.solution().is_none());
        b.insert(vec![Gf256::ONE, Gf256::ZERO]);
        assert!(b.solution().is_none());
    }

    #[test]
    fn helpfulness_between_bases() {
        let mut x = EchelonBasis::<Gf256>::new(3);
        let mut y = EchelonBasis::<Gf256>::new(3);
        x.insert(unit(3, 0));
        y.insert(unit(3, 0));
        // Equal subspaces: not helpful.
        assert!(!y.is_helped_by(&x));
        x.insert(unit(3, 1));
        // x now strictly larger: helpful to y but not vice versa.
        assert!(y.is_helped_by(&x));
        assert!(!x.is_helped_by(&y));
    }

    #[test]
    fn insert_keeps_rows_reduced() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut b = EchelonBasis::<Gf256>::new(8);
        for _ in 0..40 {
            let row: Vec<Gf256> = (0..8).map(|_| Gf256::random(&mut rng)).collect();
            b.insert(row);
        }
        // Every pivot column must be zero in all other rows (Gauss-Jordan).
        for (c, &p) in b.pivots.iter().enumerate() {
            if let Some(ri) = p {
                for (j, row) in b.rows().iter().enumerate() {
                    if j != ri {
                        assert!(row[c].is_zero(), "column {c} not eliminated in row {j}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shorter than pivot width")]
    fn short_row_panics() {
        let mut b = EchelonBasis::<Gf256>::new(3);
        b.insert(vec![Gf256::ONE]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn inconsistent_row_length_panics() {
        let mut b = EchelonBasis::<Gf256>::new(2);
        b.insert(vec![Gf256::ONE, Gf256::ZERO, Gf256::ONE]);
        b.insert(vec![Gf256::ONE, Gf256::ZERO]);
    }

    #[test]
    fn gf2_dense_decode() {
        // Full decode over GF(2) with payloads.
        let mut rng = StdRng::seed_from_u64(15);
        let k = 8;
        let msgs: Vec<Vec<Gf2>> = (0..k)
            .map(|_| (0..4).map(|_| Gf2::random(&mut rng)).collect())
            .collect();
        let mut b = EchelonBasis::<Gf2>::new(k);
        let mut inserted = 0;
        while !b.is_full() && inserted < 1000 {
            let coeffs: Vec<Gf2> = (0..k).map(|_| Gf2::random(&mut rng)).collect();
            let mut row = coeffs.clone();
            for j in 0..4 {
                let mut acc = Gf2::ZERO;
                for (i, m) in msgs.iter().enumerate() {
                    acc += coeffs[i] * m[j];
                }
                row.push(acc);
            }
            b.insert(row);
            inserted += 1;
        }
        assert_eq!(b.solution().unwrap(), msgs);
        // Expected insertions to fill GF(2) rank k is about k + 1.6.
        assert!(inserted < 100, "took {inserted} inserts");
        let _ = rng.gen::<u8>();
    }
}
