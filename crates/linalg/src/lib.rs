//! Dense linear algebra over finite fields.
//!
//! Algebraic gossip nodes "store messages (linear equations) in a matrix
//! form and once the dimension (or rank) of the matrix becomes k, a node can
//! solve the linear system and discover all the k messages" (Avin et al.,
//! Section 2). This crate provides exactly that machinery:
//!
//! * [`Matrix`] — a dense row-major matrix over any [`ag_gf::Field`], with
//!   Gaussian elimination, rank, inversion and solving,
//! * [`EchelonBasis`] — an *incremental* row-echelon basis: the decoder hot
//!   path that inserts one received equation at a time and reports whether
//!   it was innovative (a "helpful message" in the paper's terminology).
//!
//! # Examples
//!
//! ```
//! use ag_gf::{Field, Gf256};
//! use ag_linalg::Matrix;
//!
//! let m = Matrix::from_rows(vec![
//!     vec![Gf256::new(1), Gf256::new(2)],
//!     vec![Gf256::new(3), Gf256::new(4)],
//! ]).unwrap();
//! assert_eq!(m.rank(), 2);
//! let inv = m.inverse().unwrap();
//! assert!(m.matmul(&inv).unwrap().is_identity());
//! ```

mod echelon;
mod matrix;

pub use echelon::{EchelonBasis, Insertion};
pub use matrix::{Matrix, ShapeError};
