//! Dense linear algebra over finite fields.
//!
//! Algebraic gossip nodes "store messages (linear equations) in a matrix
//! form and once the dimension (or rank) of the matrix becomes k, a node can
//! solve the linear system and discover all the k messages" (Avin et al.,
//! Section 2). This crate provides exactly that machinery:
//!
//! * [`Matrix`] — a dense row-major matrix over any [`ag_gf::SlabField`],
//!   with Gaussian elimination, rank, inversion and solving,
//! * [`EchelonBasis`] — an *incremental* row-echelon basis: the decoder hot
//!   path that inserts one received equation at a time and reports whether
//!   it was innovative (a "helpful message" in the paper's terminology),
//! * [`BasisArena`] — a simulation-wide arena holding every node's basis
//!   with rank-bounded storage ([`ArenaGrowth::Chunked`]) or fully
//!   preallocated rows for allocation-free insertion
//!   ([`ArenaGrowth::Preallocated`]), splittable into `Send`
//!   [`BasisShard`]s for parallel round execution (same elimination code
//!   as [`EchelonBasis`], bit-identical results),
//! * [`reference::ScalarBasis`] — the preserved scalar elimination path,
//!   used by differential tests and the `bench_decoder_slab` baseline.
//!
//! # The slab layer
//!
//! Both [`Matrix`] and [`EchelonBasis`] store their rows as contiguous
//! packed byte slabs and drive every row operation (normalize, axpy,
//! row-sum) through the [`ag_gf::SlabField`] bulk kernels. Elimination is
//! therefore bounds-check-free table streaming for GF(2⁸) and `u64`-chunked
//! XOR for GF(2), instead of a scalar [`ag_gf::Field`] multiply per symbol.
//! Malformed rows are rejected up front with a typed [`BasisError`] (see
//! [`EchelonBasis::try_insert`]) so a shape bug can never corrupt a basis
//! mid-elimination.
//!
//! # Examples
//!
//! ```
//! use ag_gf::{Field, Gf256};
//! use ag_linalg::Matrix;
//!
//! let m = Matrix::from_rows(vec![
//!     vec![Gf256::new(1), Gf256::new(2)],
//!     vec![Gf256::new(3), Gf256::new(4)],
//! ]).unwrap();
//! assert_eq!(m.rank(), 2);
//! let inv = m.inverse().unwrap();
//! assert!(m.matmul(&inv).unwrap().is_identity());
//! ```

mod arena;
mod echelon;
mod matrix;
pub mod reference;
mod replay;

pub use arena::{ArenaError, ArenaGrowth, BasisArena, BasisShard};
pub use echelon::{BasisError, EchelonBasis, Insertion};
pub use matrix::{Matrix, ShapeError};
pub use replay::{replay_mode, set_replay_mode, ReplayMode};
