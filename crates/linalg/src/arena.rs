//! A simulation-wide arena of echelon bases: one rank-bounded store per node.
//!
//! A gossip simulation holds one decoder basis per node. Backing each with
//! its own growing [`EchelonBasis`](crate::EchelonBasis) means `n`
//! independently reallocating `Vec`s with no shared discipline — fine at
//! experiment scale, but an allocation storm at `n = 10⁵`. [`BasisArena`]
//! owns every node's rows behind one type with two growth policies
//! ([`ArenaGrowth`]):
//!
//! - [`ArenaGrowth::Chunked`] (the default): each node starts empty and its
//!   coefficient/payload/log storage grows in geometric chunks as its rank
//!   actually grows, capped at the full-rank footprint. Most nodes sit far
//!   below full rank for most of a run, so the arena's resident footprint
//!   tracks `Σ rank(v)` instead of `n · pivot_width` — the difference
//!   between n = 10⁵ and n = 10⁶ fitting in memory. Rank-only runs
//!   (`row_elems == pivot_width`) skip the elimination log entirely: it
//!   would never be replayed.
//! - [`ArenaGrowth::Preallocated`]: every node reserves its full-rank
//!   capacity up front, so inserting rows performs **zero heap allocation**
//!   after construction — the policy the counting-allocator audits pin.
//!
//! The arena mirrors the [coefficient/payload split](crate::echelon) of
//! `EchelonBasis`: per node there is an eagerly reduced coefficient slab
//! (all rank/innovation decisions read only this), a payload slab whose
//! rows are appended raw, and an elimination log replayed onto the payloads
//! in fused multi-row passes only when payload bytes are observed.
//!
//! Elimination is literally the same code as `EchelonBasis` (the shared
//! `core_ops` functions), so a packet stream replayed through both — or
//! through either growth policy — produces bit-identical verdicts, pivots
//! and stored bytes; the differential suites in `ag-rlnc` and the golden
//! trajectory pins in `algebraic-gossip` lock that equivalence end to end.
//!
//! For parallel round execution, [`BasisArena::shards_mut`] splits the
//! arena into disjoint contiguous [`BasisShard`]s. Per-node state lives in
//! `RefCell`s purely so `&self` read paths (emit, probe, solution) can
//! materialize payloads lazily; a shard accesses its nodes through
//! `&mut [RefCell<…>]` + `get_mut`, which is `Send` without any locking —
//! disjointness is enforced by the slice split, not at runtime.
//!
//! # Examples
//!
//! ```
//! use ag_gf::{Field, Gf256, SlabField};
//! use ag_linalg::{BasisArena, Insertion};
//!
//! // Two nodes, width-2 bases, rows carry one payload symbol.
//! let mut arena = BasisArena::<Gf256>::new(2, 2, 3);
//! let row = Gf256::pack(&[Gf256::ONE, Gf256::ZERO, Gf256::new(9)]);
//! assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Innovative);
//! assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Redundant);
//! assert_eq!(arena.rank(0), 1);
//! assert_eq!(arena.rank(1), 0);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;

use ag_gf::SlabField;

use crate::echelon::{core_ops, Insertion};

/// How a [`BasisArena`] provisions per-node row storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArenaGrowth {
    /// Rank-bounded growth: storage is reserved in geometric chunks as a
    /// node's rank grows, capped at the full-rank footprint. Inserts that
    /// cross a chunk boundary allocate; resident memory tracks actual
    /// ranks.
    #[default]
    Chunked,
    /// Full-rank capacity reserved per node at construction: inserts never
    /// allocate. The policy for allocation-audited runs.
    Preallocated,
}

/// Typed sizing failures from [`BasisArena::try_with_growth`].
///
/// The capacity math (`nodes · pivot_width · row_elems · SYMBOL_BYTES`
/// plus the `pivot_width²` log) runs through `checked_mul`, so impossible
/// shapes surface as [`ArenaError::CapacityOverflow`] with the computed
/// byte count instead of a silent wrap or an opaque allocator abort, and
/// failed reservations surface as [`ArenaError::AllocationFailure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArenaError {
    /// The full-rank footprint does not fit in `usize`.
    CapacityOverflow {
        /// Requested node count.
        nodes: usize,
        /// Requested pivot (coefficient) width.
        pivot_width: usize,
        /// Requested symbols per row.
        row_elems: usize,
        /// The full-rank footprint that overflowed, in bytes (exact, in
        /// `u128`).
        bytes: u128,
    },
    /// The allocator refused a reservation of `bytes` bytes.
    AllocationFailure {
        /// Size of the refused reservation.
        bytes: usize,
    },
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::CapacityOverflow {
                nodes,
                pivot_width,
                row_elems,
                bytes,
            } => write!(
                f,
                "arena capacity overflows usize: {nodes} nodes × {pivot_width} rows × \
                 {row_elems} symbols (+ elimination log) = {bytes} bytes"
            ),
            ArenaError::AllocationFailure { bytes } => {
                write!(
                    f,
                    "arena allocation failed: could not reserve {bytes} bytes"
                )
            }
        }
    }
}

impl std::error::Error for ArenaError {}

/// Per-row byte widths, precomputed once per call tree so [`NodeBasis`]
/// methods need no back-reference to the arena.
#[derive(Debug, Clone, Copy)]
struct Dims {
    /// Pivot (coefficient) width in symbols — also the per-node row cap.
    pivot_width: usize,
    /// Bytes of the packed coefficient prefix of every row.
    kb: usize,
    /// Bytes of the payload tail of every row.
    pb: usize,
}

/// Smallest chunk a growing slab reserves at a time: below this, geometric
/// doubling degenerates into per-row reallocation.
const MIN_CHUNK_BYTES: usize = 64;

/// Grows `vec`'s capacity to hold `needed` bytes, reserving geometrically
/// (at least doubling, at least [`MIN_CHUNK_BYTES`]) but never past the
/// `full`-rank footprint. No-op when capacity already suffices — which is
/// always, under [`ArenaGrowth::Preallocated`].
fn reserve_chunked(vec: &mut Vec<u8>, needed: usize, full: usize) {
    debug_assert!(needed <= full, "rank-bounded growth exceeded full rank");
    if vec.capacity() >= needed {
        return;
    }
    let target = needed
        .max(vec.capacity().saturating_mul(2))
        .max(MIN_CHUNK_BYTES)
        .min(full);
    vec.reserve_exact(target - vec.len());
}

/// One node's basis: reduced coefficient rows, raw payload tails, and the
/// elimination log that materializes them on demand. All slabs are exactly
/// `rank` rows long (the log holds `rank` events); capacity is governed by
/// the arena's [`ArenaGrowth`] policy.
#[derive(Debug, Clone)]
struct NodeBasis {
    /// Row-indexed pivot map: stored row `i` has pivot column
    /// `pivot_cols[i]`. `rank == pivot_cols.len()`.
    pivot_cols: Vec<usize>,
    /// Reduced coefficient prefixes, `kb` bytes per row, fully reduced
    /// (Gauss–Jordan) at all times.
    coeff: Vec<u8>,
    /// Payload tails, `pb` bytes per row. Rows `< flushed` are
    /// materialized (reduced); later rows are raw as received.
    pay: Vec<u8>,
    /// Elimination events packed per [`core_ops::log_offset`]. Empty for
    /// rank-only arenas (`pb == 0`): never written, never replayed.
    log: Vec<u8>,
    /// Events already replayed onto `pay`.
    flushed: usize,
}

impl NodeBasis {
    fn empty() -> Self {
        NodeBasis {
            pivot_cols: Vec::new(),
            coeff: Vec::new(),
            pay: Vec::new(),
            log: Vec::new(),
            flushed: 0,
        }
    }

    #[inline]
    fn rank(&self) -> usize {
        self.pivot_cols.len()
    }

    /// Heap bytes currently reserved by this node's storage.
    fn heap_bytes(&self) -> usize {
        self.coeff.capacity()
            + self.pay.capacity()
            + self.log.capacity()
            + self.pivot_cols.capacity() * std::mem::size_of::<usize>()
    }

    /// Reserves the full-rank footprint, so later inserts never allocate.
    fn try_preallocate<F: SlabField>(&mut self, d: Dims) -> Result<(), ArenaError> {
        let k = d.pivot_width;
        let sb = F::SYMBOL_BYTES;
        let reserve = |vec: &mut Vec<u8>, bytes: usize| {
            vec.try_reserve_exact(bytes)
                .map_err(|_| ArenaError::AllocationFailure { bytes })
        };
        reserve(&mut self.coeff, k * d.kb)?;
        reserve(&mut self.pay, k * d.pb)?;
        if d.pb > 0 {
            reserve(&mut self.log, k * k * sb)?;
        }
        self.pivot_cols
            .try_reserve_exact(k)
            .map_err(|_| ArenaError::AllocationFailure {
                bytes: k * std::mem::size_of::<usize>(),
            })
    }

    /// Replays pending elimination events onto the payload rows, through
    /// the same row-wise/blocked schedule choice as
    /// [`EchelonBasis`](crate::EchelonBasis) (see [`crate::ReplayMode`]).
    /// Idempotent; trivial for rank-only rows.
    // ag-lint: hot-path
    fn flush<F: SlabField>(&mut self, d: Dims, sc: &mut ArenaScratch) {
        let rank = self.rank();
        if d.pb == 0 {
            self.flushed = rank;
            return;
        }
        let pay = &mut self.pay[..rank * d.pb];
        core_ops::flush_pending::<F>(
            pay,
            &self.log,
            &mut self.flushed,
            rank,
            d.pb,
            &mut sc.transform,
            &mut sc.panel,
        );
    }

    /// The insert hot path shared by the serial arena and the shards; the
    /// same elimination calls, in the same order, as
    /// [`EchelonBasis`](crate::EchelonBasis).
    // ag-lint: hot-path
    fn insert_packed<F: SlabField>(
        &mut self,
        d: Dims,
        row: &mut [u8],
        sc: &mut ArenaScratch,
    ) -> Insertion {
        let rank = self.rank();
        let (crow, pay_in) = row.split_at_mut(d.kb);
        let Some(pivot_col) =
            core_ops::reduce_coeff::<F>(&self.pivot_cols, &self.coeff, crow, &mut sc.factors)
        else {
            return Insertion::Redundant;
        };
        let k = d.pivot_width;
        reserve_chunked(&mut self.coeff, (rank + 1) * d.kb, k * d.kb);
        self.coeff.resize((rank + 1) * d.kb, 0);
        let (existing, slot) = self.coeff.split_at_mut(rank * d.kb);
        let pinv = core_ops::normalize_and_back_substitute::<F>(
            existing,
            rank,
            pivot_col,
            crow,
            &mut sc.back,
        );
        slot.copy_from_slice(crow);
        if d.pb > 0 {
            // Payload: raw memcpy now, elimination deferred to the log.
            let sb = F::SYMBOL_BYTES;
            reserve_chunked(&mut self.pay, (rank + 1) * d.pb, k * d.pb);
            self.pay.extend_from_slice(pay_in);
            let lbase = core_ops::log_offset::<F>(rank);
            let lend = lbase + (2 * rank + 1) * sb;
            reserve_chunked(&mut self.log, lend, k * k * sb);
            self.log.resize(lend, 0);
            self.log[lbase..lbase + rank * sb].copy_from_slice(&sc.factors);
            pinv.write_symbol(&mut self.log[lbase + rank * sb..]);
            self.log[lbase + (rank + 1) * sb..lend].copy_from_slice(&sc.back);
        } else {
            // No payload means no log: the row is trivially materialized.
            self.flushed = rank + 1;
        }
        if self.pivot_cols.capacity() == rank {
            // Same rank-bounded discipline as the byte slabs: geometric,
            // never past the full-rank row count.
            let target = (rank * 2).max(4).min(k).max(rank + 1);
            self.pivot_cols.reserve_exact(target - rank);
        }
        self.pivot_cols.push(pivot_col);
        Insertion::Innovative
    }

    /// Non-mutating innovation probe against the coefficient slab only.
    fn would_be_innovative<F: SlabField>(
        &self,
        d: Dims,
        row: &[u8],
        sc: &mut ArenaScratch,
    ) -> bool {
        let ArenaScratch { factors, probe, .. } = sc;
        probe.clear();
        probe.extend_from_slice(&row[..d.kb]);
        core_ops::reduce_coeff::<F>(&self.pivot_cols, &self.coeff, probe, factors).is_some()
    }

    fn copy_packed_row_into<F: SlabField>(
        &mut self,
        d: Dims,
        i: usize,
        sc: &mut ArenaScratch,
        out: &mut Vec<u8>,
    ) {
        self.flush::<F>(d, sc);
        out.clear();
        out.extend_from_slice(&self.coeff[i * d.kb..(i + 1) * d.kb]);
        out.extend_from_slice(&self.pay[i * d.pb..(i + 1) * d.pb]);
    }

    fn accumulate_rows_into<F: SlabField>(
        &mut self,
        d: Dims,
        factors: &[u8],
        sc: &mut ArenaScratch,
        out: &mut [u8],
    ) {
        self.flush::<F>(d, sc);
        let (oc, op) = out.split_at_mut(d.kb);
        F::mul_add_multi(factors, &self.coeff, oc);
        F::mul_add_multi(factors, &self.pay, op);
    }

    fn solution<F: SlabField>(&mut self, d: Dims, sc: &mut ArenaScratch) -> Option<Vec<Vec<F>>> {
        let k = d.pivot_width;
        if self.rank() != k {
            return None;
        }
        self.flush::<F>(d, sc);
        // Invert the row-indexed pivot map: a full basis has every column.
        let mut row_of_col = vec![usize::MAX; k];
        for (ri, &c) in self.pivot_cols.iter().enumerate() {
            row_of_col[c] = ri;
        }
        let mut out = Vec::with_capacity(k);
        for (c, &ri) in row_of_col.iter().enumerate() {
            assert_ne!(ri, usize::MAX, "full basis has all pivots");
            debug_assert!(
                (0..k).all(|j| {
                    let v: F = core_ops::col::<F>(&self.coeff[ri * d.kb..], j);
                    if j == c {
                        v == F::ONE
                    } else {
                        v.is_zero()
                    }
                }),
                "fully reduced basis rows must be unit vectors"
            );
            out.push(F::unpack(&self.pay[ri * d.pb..(ri + 1) * d.pb]));
        }
        Some(out)
    }
}

/// Reusable scratch buffers; transient, never part of logical state.
#[derive(Debug, Clone)]
struct ArenaScratch {
    /// Row-indexed reduction multipliers.
    factors: Vec<u8>,
    /// Row-indexed back-substitution multipliers.
    back: Vec<u8>,
    /// Coefficient-prefix probe row for `&self` innovation verdicts.
    probe: Vec<u8>,
    /// Row copy for [`BasisArena::insert_packed_slice`].
    insert: Vec<u8>,
    /// Dense transform panel for blocked payload replay
    /// ([`core_ops::flush_pending`]); shared across nodes — flushes are
    /// serial per arena (or per shard).
    transform: Vec<u8>,
    /// Stride-padded source/destination payload panel for the blocked
    /// replay GEMM.
    panel: Vec<u8>,
}

impl ArenaScratch {
    fn new() -> Self {
        ArenaScratch {
            factors: Vec::new(),
            back: Vec::new(),
            probe: Vec::new(),
            insert: Vec::new(),
            transform: Vec::new(),
            panel: Vec::new(),
        }
    }
}

/// All of a simulation's echelon bases, rank-bounded per node — see the
/// [module docs](self).
///
/// Unlike [`EchelonBasis`](crate::EchelonBasis), whose row length is
/// learned from the first inserted row, an arena fixes `row_elems`
/// (coefficients + augmented tail) at construction; every row must match.
/// Shape violations are bugs in the caller's wiring, not data-dependent
/// conditions, so the arena asserts rather than returning typed errors —
/// the decoder layer above re-checks shapes where untrusted input enters.
/// *Sizing* failures, in contrast, are data-dependent (they scale with
/// `n`), so [`BasisArena::try_with_growth`] reports them as [`ArenaError`].
#[derive(Debug, Clone)]
pub struct BasisArena<F> {
    /// Per-node bases. `RefCell` so `&self` read paths can materialize
    /// payloads lazily; shards take disjoint `&mut` slices instead.
    nodes: Vec<RefCell<NodeBasis>>,
    /// Pivot (coefficient) width of every basis — also the per-node row
    /// cap.
    pivot_width: usize,
    /// Symbols per row (pivot prefix + augmented tail), fixed up front.
    row_elems: usize,
    /// Storage policy.
    growth: ArenaGrowth,
    /// Reusable buffers (transient).
    scratch: RefCell<ArenaScratch>,
    _field: PhantomData<F>,
}

impl<F: SlabField> BasisArena<F> {
    /// Creates an arena of `nodes` empty bases with `pivot_width` leading
    /// coefficients and `row_elems` total symbols per row, growing storage
    /// in rank-bounded chunks ([`ArenaGrowth::Chunked`]).
    ///
    /// # Panics
    ///
    /// Panics if `pivot_width == 0`, `row_elems < pivot_width`, or the
    /// full-rank capacity math fails (see [`BasisArena::try_with_growth`]
    /// for the non-panicking form).
    #[must_use]
    pub fn new(nodes: usize, pivot_width: usize, row_elems: usize) -> Self {
        Self::with_growth(nodes, pivot_width, row_elems, ArenaGrowth::default())
    }

    /// [`BasisArena::new`] with an explicit [`ArenaGrowth`] policy.
    ///
    /// # Panics
    ///
    /// Panics on shape violations and on [`ArenaError`].
    #[must_use]
    pub fn with_growth(
        nodes: usize,
        pivot_width: usize,
        row_elems: usize,
        growth: ArenaGrowth,
    ) -> Self {
        match Self::try_with_growth(nodes, pivot_width, row_elems, growth) {
            Ok(arena) => arena,
            // ag-lint: allow(panic-policy) — documented panicking wrapper;
            // try_with_growth is the typed-error twin.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: checks the full-rank capacity math with
    /// `checked_mul` (returning [`ArenaError::CapacityOverflow`] with the
    /// exact byte count) and, under [`ArenaGrowth::Preallocated`], reserves
    /// every node's storage via `try_reserve` (returning
    /// [`ArenaError::AllocationFailure`] instead of aborting).
    ///
    /// # Panics
    ///
    /// Panics if `pivot_width == 0` or `row_elems < pivot_width` — shape
    /// bugs, not sizing conditions.
    pub fn try_with_growth(
        nodes: usize,
        pivot_width: usize,
        row_elems: usize,
        growth: ArenaGrowth,
    ) -> Result<Self, ArenaError> {
        assert!(pivot_width > 0, "pivot width must be positive");
        assert!(
            row_elems >= pivot_width,
            "rows must at least cover the pivot prefix"
        );
        let sb = F::SYMBOL_BYTES;
        let tail = row_elems - pivot_width;
        // Full-rank footprint per node, in symbols: k·k coefficients,
        // k·tail payload, k² log events (only when a payload exists).
        let log_syms = if tail > 0 {
            pivot_width * pivot_width
        } else {
            0
        };
        let overflow = || {
            let per_node = (pivot_width as u128) * (row_elems as u128) + log_syms as u128;
            ArenaError::CapacityOverflow {
                nodes,
                pivot_width,
                row_elems,
                bytes: (nodes as u128) * per_node * sb as u128,
            }
        };
        pivot_width
            .checked_mul(row_elems)
            .and_then(|s| s.checked_add(log_syms))
            .and_then(|s| s.checked_mul(sb))
            .and_then(|b| b.checked_mul(nodes))
            .ok_or_else(overflow)?;
        let mut cells = Vec::new();
        cells
            .try_reserve_exact(nodes)
            .map_err(|_| ArenaError::AllocationFailure {
                bytes: nodes.saturating_mul(std::mem::size_of::<RefCell<NodeBasis>>()),
            })?;
        cells.extend((0..nodes).map(|_| RefCell::new(NodeBasis::empty())));
        let mut arena = BasisArena {
            nodes: cells,
            pivot_width,
            row_elems,
            growth,
            scratch: RefCell::new(ArenaScratch::new()),
            _field: PhantomData,
        };
        if growth == ArenaGrowth::Preallocated {
            let dims = arena.dims();
            for cell in &mut arena.nodes {
                cell.get_mut().try_preallocate::<F>(dims)?;
            }
            // Shared scratch at its full-rank footprint too. The insert
            // path's row-indexed multiplier buffers (`factors`, `back`)
            // grow with the highest rank seen so far across the whole
            // arena, which crosses Vec capacity thresholds mid-run —
            // reserving them up front is what keeps rounds past warm-up
            // allocation-free, not just the per-node slabs.
            let sc = arena.scratch.get_mut();
            let reserve = |vec: &mut Vec<u8>, bytes: usize| {
                vec.try_reserve_exact(bytes)
                    .map_err(|_| ArenaError::AllocationFailure { bytes })
            };
            let k = pivot_width;
            reserve(&mut sc.factors, k * sb)?;
            reserve(&mut sc.back, k * sb)?;
            reserve(&mut sc.probe, dims.kb)?;
            reserve(&mut sc.insert, dims.kb + dims.pb)?;
            if dims.pb > 0 {
                // Blocked-replay scratch (transform: k×k symbols; panel:
                // 2k stride-padded payload rows), so a blocked flush never
                // allocates mid-run either.
                reserve(&mut sc.transform, k * k * sb)?;
                reserve(&mut sc.panel, 2 * k * core_ops::padded_stride::<F>(dims.pb))?;
            }
        }
        Ok(arena)
    }

    #[inline]
    fn dims(&self) -> Dims {
        Dims {
            pivot_width: self.pivot_width,
            kb: self.pivot_width * F::SYMBOL_BYTES,
            pb: (self.row_elems - self.pivot_width) * F::SYMBOL_BYTES,
        }
    }

    /// Number of per-node bases.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The pivot (coefficient) width of every basis.
    #[must_use]
    pub fn pivot_width(&self) -> usize {
        self.pivot_width
    }

    /// Symbols per row (pivot prefix + augmented tail).
    #[must_use]
    pub fn row_elems(&self) -> usize {
        self.row_elems
    }

    /// Bytes per row.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_elems * F::SYMBOL_BYTES
    }

    /// Bytes of the packed coefficient prefix of every row.
    #[must_use]
    pub fn coeff_bytes(&self) -> usize {
        self.pivot_width * F::SYMBOL_BYTES
    }

    /// Bytes of the payload tail of every row.
    #[must_use]
    pub fn pay_bytes(&self) -> usize {
        (self.row_elems - self.pivot_width) * F::SYMBOL_BYTES
    }

    /// The storage policy this arena was built with.
    #[must_use]
    pub fn growth(&self) -> ArenaGrowth {
        self.growth
    }

    /// Heap bytes currently reserved across every node's row storage
    /// (slab capacities plus per-node headers) — the number the memory
    /// model in the benches reports per node.
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|c| c.borrow().heap_bytes() + std::mem::size_of::<RefCell<NodeBasis>>())
            .sum()
    }

    /// Node `node`'s current rank.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn rank(&self, node: usize) -> usize {
        self.nodes[node].borrow().rank()
    }

    /// True once node `node`'s basis spans the full coefficient space.
    #[must_use]
    pub fn is_full(&self, node: usize) -> bool {
        self.rank(node) == self.pivot_width
    }

    /// Materializes full row `i` of node `node` (coefficients + reduced
    /// payload) into `out`, replaying the node's pending payload
    /// elimination first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank(node)`.
    pub fn copy_packed_row_into(&self, node: usize, i: usize, out: &mut Vec<u8>) {
        let mut nb = self.nodes[node].borrow_mut();
        let mut sc = self.scratch.borrow_mut();
        assert!(i < nb.rank(), "row index out of bounds");
        nb.copy_packed_row_into::<F>(self.dims(), i, &mut sc, out);
    }

    /// Accumulates `Σᵢ factors[i] · row_i` of node `node`'s stored rows
    /// into `out` (`out += …`), materializing the node's payloads first.
    /// `factors` holds one packed symbol per stored row; zero factors are
    /// skipped. This is the recoder's emit kernel: two fused gathers per
    /// packet.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is not exactly `rank(node)` packed symbols or
    /// `out` is not exactly [`BasisArena::row_bytes`] long.
    pub fn accumulate_rows_into(&self, node: usize, factors: &[u8], out: &mut [u8]) {
        let mut nb = self.nodes[node].borrow_mut();
        let mut sc = self.scratch.borrow_mut();
        assert_eq!(
            factors.len(),
            nb.rank() * F::SYMBOL_BYTES,
            "one packed factor per stored row"
        );
        assert_eq!(out.len(), self.row_bytes(), "out must be one full row");
        nb.accumulate_rows_into::<F>(self.dims(), factors, &mut sc, out);
    }

    /// Inserts a packed row into node `node`'s basis, reducing its
    /// coefficient prefix **in place** in the caller's buffer (which is
    /// clobbered: on return the prefix holds the reduced/normalized
    /// remainder, while the payload tail is untouched — its elimination is
    /// deferred to the node's log). This is the zero-copy hot path for
    /// callers that own a reusable row buffer.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `row.len() != row_bytes()`.
    // ag-lint: hot-path
    pub fn insert_packed_mut(&mut self, node: usize, row: &mut [u8]) -> Insertion {
        let rb = self.row_bytes();
        assert_eq!(
            row.len(),
            rb,
            "packed row length mismatch: got {}, arena rows are {rb} bytes",
            row.len()
        );
        let dims = self.dims();
        let BasisArena { nodes, scratch, .. } = self;
        nodes[node]
            .get_mut()
            .insert_packed::<F>(dims, row, scratch.get_mut())
    }

    /// Borrowing variant of [`BasisArena::insert_packed_mut`]: copies the
    /// row into the arena's internal scratch buffer first. Still
    /// allocation-free once the scratch has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `row.len() != row_bytes()`.
    // ag-lint: hot-path
    pub fn insert_packed_slice(&mut self, node: usize, row: &[u8]) -> Insertion {
        let mut buf = std::mem::take(&mut self.scratch.get_mut().insert);
        buf.clear();
        buf.extend_from_slice(row);
        let outcome = self.insert_packed_mut(node, &mut buf);
        self.scratch.get_mut().insert = buf;
        outcome
    }

    /// Would this packed row raise node `node`'s rank? Non-mutating; `row`
    /// may be a pivot-prefix-only slab or a full row — only the prefix is
    /// read, through reusable scratch buffers, so the probe is
    /// allocation-free once warmed up and never touches payload state.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the packed pivot prefix.
    #[must_use]
    pub fn would_be_innovative_packed(&self, node: usize, row: &[u8]) -> bool {
        let kb = self.coeff_bytes();
        assert!(row.len() >= kb, "row shorter than the packed pivot prefix");
        let mut sc = self.scratch.borrow_mut();
        self.nodes[node]
            .borrow()
            .would_be_innovative::<F>(self.dims(), row, &mut sc)
    }

    /// Once node `node` is full, extracts its solution exactly as
    /// [`EchelonBasis::solution`](crate::EchelonBasis::solution): row `i`
    /// of the result is the augmented tail of the equation whose
    /// coefficient vector is the `i`-th unit vector. Settles the node's
    /// deferred payload elimination in one blocked replay first.
    #[must_use]
    pub fn solution(&self, node: usize) -> Option<Vec<Vec<F>>> {
        let mut sc = self.scratch.borrow_mut();
        self.nodes[node]
            .borrow_mut()
            .solution::<F>(self.dims(), &mut sc)
    }

    /// Splits the arena into disjoint contiguous shards for parallel round
    /// execution. `bounds` must partition `0..nodes()` in order:
    /// `[(0, b₁), (b₁, b₂), …, (bₘ₋₁, nodes())]` (empty shards allowed).
    /// Each shard owns fresh scratch buffers, so shards are independent
    /// `Send` values; the borrow of `self` ends when they drop.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not an ordered contiguous partition.
    pub fn shards_mut(&mut self, bounds: &[(usize, usize)]) -> Vec<BasisShard<'_, F>> {
        let dims = self.dims();
        let total = self.nodes.len();
        let mut out = Vec::with_capacity(bounds.len());
        let mut rest = self.nodes.as_mut_slice();
        let mut consumed = 0;
        for &(start, end) in bounds {
            assert!(
                start == consumed && end >= start && end <= total,
                "shard bounds must partition the arena contiguously"
            );
            let (cells, tail) = rest.split_at_mut(end - start);
            rest = tail;
            consumed = end;
            out.push(BasisShard {
                cells,
                start,
                dims,
                scratch: ArenaScratch::new(),
                _field: PhantomData,
            });
        }
        assert_eq!(consumed, total, "shard bounds must cover every node");
        out
    }
}

/// A disjoint contiguous slice of a [`BasisArena`], addressable by the
/// original (global) node ids. `Send` by construction — per-node state is
/// reached through `&mut [RefCell<…>]` + `get_mut`, no locks, no aliasing —
/// so shards can run on worker threads while the arena itself stays single-
/// threaded. Each shard carries its own scratch buffers.
#[derive(Debug)]
pub struct BasisShard<'a, F> {
    cells: &'a mut [RefCell<NodeBasis>],
    /// Global id of `cells[0]`.
    start: usize,
    dims: Dims,
    scratch: ArenaScratch,
    _field: PhantomData<F>,
}

impl<F: SlabField> BasisShard<'_, F> {
    /// Global node ids covered: `start..start + len`.
    #[must_use]
    pub fn node_range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.cells.len()
    }

    /// Node `node`'s current rank (`node` is a global id inside
    /// [`BasisShard::node_range`]).
    #[must_use]
    pub fn rank(&self, node: usize) -> usize {
        self.cells[node - self.start].borrow().rank()
    }

    /// Shard-local [`BasisArena::insert_packed_mut`] — same elimination
    /// code, same verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the shard or the row length mismatches.
    // ag-lint: hot-path
    pub fn insert_packed_mut(&mut self, node: usize, row: &mut [u8]) -> Insertion {
        let rb = (self.dims.kb) + (self.dims.pb);
        assert_eq!(
            row.len(),
            rb,
            "packed row length mismatch: got {}, arena rows are {rb} bytes",
            row.len()
        );
        let dims = self.dims;
        let BasisShard {
            cells,
            start,
            scratch,
            ..
        } = self;
        cells[node - *start]
            .get_mut()
            .insert_packed::<F>(dims, row, scratch)
    }

    /// Shard-local [`BasisArena::copy_packed_row_into`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the shard or `i >= rank(node)`.
    pub fn copy_packed_row_into(&mut self, node: usize, i: usize, out: &mut Vec<u8>) {
        let dims = self.dims;
        let BasisShard {
            cells,
            start,
            scratch,
            ..
        } = self;
        let nb = cells[node - *start].get_mut();
        assert!(i < nb.rank(), "row index out of bounds");
        nb.copy_packed_row_into::<F>(dims, i, scratch, out);
    }

    /// Shard-local [`BasisArena::accumulate_rows_into`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the shard, `factors` is not exactly
    /// `rank(node)` packed symbols, or `out` is not one full row.
    pub fn accumulate_rows_into(&mut self, node: usize, factors: &[u8], out: &mut [u8]) {
        let dims = self.dims;
        let rb = dims.kb + dims.pb;
        let BasisShard {
            cells,
            start,
            scratch,
            ..
        } = self;
        let nb = cells[node - *start].get_mut();
        assert_eq!(
            factors.len(),
            nb.rank() * F::SYMBOL_BYTES,
            "one packed factor per stored row"
        );
        assert_eq!(out.len(), rb, "out must be one full row");
        nb.accumulate_rows_into::<F>(dims, factors, scratch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EchelonBasis;
    use ag_gf::{Field, Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random augmented row over F.
    fn random_row<F: SlabField>(rng: &mut StdRng, elems: usize) -> Vec<u8> {
        let row: Vec<F> = (0..elems).map(|_| F::random(rng)).collect();
        F::pack(&row)
    }

    /// The load-bearing property: an arena node (under either growth
    /// policy) and a standalone `EchelonBasis` fed the same stream stay
    /// bit-identical — verdicts, ranks, stored rows, and solutions.
    fn differential_vs_echelon<F: SlabField>(
        seed: u64,
        k: usize,
        tail: usize,
        growth: ArenaGrowth,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = 3;
        let elems = k + tail;
        let mut arena = BasisArena::<F>::with_growth(nodes, k, elems, growth);
        let mut bases: Vec<EchelonBasis<F>> = (0..nodes).map(|_| EchelonBasis::new(k)).collect();
        for _ in 0..6 * k {
            let node = rng.gen_range(0..nodes);
            let row = random_row::<F>(&mut rng, elems);
            let got = arena.insert_packed_slice(node, &row);
            let want = bases[node].try_insert_packed(row).expect("shape-valid row");
            assert_eq!(got, want);
            assert_eq!(arena.rank(node), bases[node].rank());
        }
        let mut arena_row = Vec::new();
        let mut basis_row = Vec::new();
        for node in 0..nodes {
            assert_eq!(arena.is_full(node), bases[node].is_full());
            for i in 0..arena.rank(node) {
                arena.copy_packed_row_into(node, i, &mut arena_row);
                bases[node].copy_packed_row_into(i, &mut basis_row);
                assert_eq!(arena_row, basis_row, "materialized rows diverged");
                let kb = arena.coeff_bytes();
                let header: Vec<&[u8]> = bases[node].coeff_rows().collect();
                assert_eq!(&arena_row[..kb], header[i], "coefficient rows diverged");
            }
            if arena.is_full(node) {
                assert_eq!(arena.solution(node), bases[node].solution());
            }
        }
    }

    #[test]
    fn arena_matches_echelon_gf256() {
        for seed in 0..4 {
            differential_vs_echelon::<Gf256>(seed, 6, 3, ArenaGrowth::Chunked);
            differential_vs_echelon::<Gf256>(seed, 6, 3, ArenaGrowth::Preallocated);
        }
    }

    #[test]
    fn arena_matches_echelon_gf2() {
        // GF(2) produces many redundant rows — exercises the annihilation
        // path heavily.
        for seed in 0..4 {
            differential_vs_echelon::<Gf2>(seed, 8, 2, ArenaGrowth::Chunked);
            differential_vs_echelon::<Gf2>(seed, 8, 2, ArenaGrowth::Preallocated);
        }
    }

    /// The two growth policies are the same arena, byte for byte: only
    /// capacity provisioning differs, never verdicts, rows or solutions.
    #[test]
    fn chunked_and_preallocated_are_bit_identical() {
        let k = 7;
        let r = 5;
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            let mut chunked = BasisArena::<Gf256>::with_growth(2, k, k + r, ArenaGrowth::Chunked);
            let mut prealloc =
                BasisArena::<Gf256>::with_growth(2, k, k + r, ArenaGrowth::Preallocated);
            let mut a = Vec::new();
            let mut b = Vec::new();
            for _ in 0..8 * k {
                let node = rng.gen_range(0..2);
                let row = random_row::<Gf256>(&mut rng, k + r);
                assert_eq!(
                    chunked.insert_packed_slice(node, &row),
                    prealloc.insert_packed_slice(node, &row)
                );
                assert_eq!(chunked.rank(node), prealloc.rank(node));
            }
            for node in 0..2 {
                for i in 0..chunked.rank(node) {
                    chunked.copy_packed_row_into(node, i, &mut a);
                    prealloc.copy_packed_row_into(node, i, &mut b);
                    assert_eq!(a, b, "stored rows diverged across growth policies");
                }
                assert_eq!(chunked.solution(node), prealloc.solution(node));
            }
            // Chunked growth stays within the preallocated footprint.
            assert!(chunked.allocated_bytes() <= prealloc.allocated_bytes());
        }
    }

    /// Shards over disjoint node ranges replay the exact serial inserts.
    #[test]
    fn shards_match_serial_inserts() {
        let k = 6;
        let r = 3;
        let nodes = 5;
        let mut rng = StdRng::seed_from_u64(77);
        let stream: Vec<(usize, Vec<u8>)> = (0..6 * k * nodes)
            .map(|_| {
                (
                    rng.gen_range(0..nodes),
                    random_row::<Gf256>(&mut rng, k + r),
                )
            })
            .collect();
        let mut serial = BasisArena::<Gf256>::new(nodes, k, k + r);
        let serial_verdicts: Vec<Insertion> = stream
            .iter()
            .map(|(node, row)| serial.insert_packed_slice(*node, row))
            .collect();
        let mut sharded = BasisArena::<Gf256>::new(nodes, k, k + r);
        {
            let mut shards = sharded.shards_mut(&[(0, 2), (2, 2), (2, nodes)]);
            let mut buf = Vec::new();
            for ((node, row), want) in stream.iter().zip(&serial_verdicts) {
                let shard = shards
                    .iter_mut()
                    .find(|s| s.node_range().contains(node))
                    .expect("bounds cover every node");
                buf.clear();
                buf.extend_from_slice(row);
                assert_eq!(shard.insert_packed_mut(*node, &mut buf), *want);
            }
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        for node in 0..nodes {
            assert_eq!(serial.rank(node), sharded.rank(node));
            for i in 0..serial.rank(node) {
                serial.copy_packed_row_into(node, i, &mut a);
                sharded.copy_packed_row_into(node, i, &mut b);
                assert_eq!(a, b);
            }
            assert_eq!(serial.solution(node), sharded.solution(node));
        }
    }

    #[test]
    fn shard_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<BasisShard<'_, Gf256>>();
    }

    #[test]
    fn capacity_overflow_is_typed_and_reports_bytes() {
        let err = BasisArena::<Gf256>::try_with_growth(usize::MAX / 4, 8, 16, ArenaGrowth::Chunked)
            .expect_err("must overflow");
        assert!(matches!(err, ArenaError::CapacityOverflow { .. }));
        let msg = err.to_string();
        assert!(msg.contains("bytes"), "byte count missing from: {msg}");
        // The exact u128 byte count appears in the message.
        let want = (usize::MAX as u128 / 4) * (8 * 16 + 64);
        assert!(
            msg.contains(&want.to_string()),
            "computed count missing: {msg}"
        );
    }

    #[test]
    fn preallocated_inserts_do_not_grow_allocated_bytes() {
        let mut rng = StdRng::seed_from_u64(3);
        let k = 6;
        let mut arena = BasisArena::<Gf256>::with_growth(2, k, k + 4, ArenaGrowth::Preallocated);
        let before = arena.allocated_bytes();
        while !arena.is_full(0) || !arena.is_full(1) {
            let node = rng.gen_range(0..2);
            let row = random_row::<Gf256>(&mut rng, k + 4);
            arena.insert_packed_slice(node, &row);
        }
        assert_eq!(arena.allocated_bytes(), before);
    }

    #[test]
    fn rank_only_arena_skips_payload_and_log_storage() {
        let mut rng = StdRng::seed_from_u64(11);
        let k = 8;
        let mut arena = BasisArena::<Gf256>::new(1, k, k);
        while !arena.is_full(0) {
            let row = random_row::<Gf256>(&mut rng, k);
            arena.insert_packed_slice(0, &row);
        }
        // Coefficients only: k rows × k bytes, plus the pivot map. No pay,
        // no log — nothing will ever replay them.
        assert!(arena.allocated_bytes() < 4 * k * k + 256);
        assert!(arena.solution(0).is_some());
    }

    #[test]
    fn full_node_rejects_everything_without_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        let k = 4;
        let mut arena = BasisArena::<Gf256>::new(1, k, k);
        while !arena.is_full(0) {
            let row = random_row::<Gf256>(&mut rng, k);
            arena.insert_packed_slice(0, &row);
        }
        for _ in 0..20 {
            let row = random_row::<Gf256>(&mut rng, k);
            assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Redundant);
        }
        assert_eq!(arena.rank(0), k);
    }

    #[test]
    fn nodes_are_independent() {
        let mut arena = BasisArena::<Gf256>::new(2, 2, 2);
        let e0 = Gf256::pack(&[Gf256::ONE, Gf256::ZERO]);
        assert_eq!(arena.insert_packed_slice(0, &e0), Insertion::Innovative);
        assert_eq!(arena.rank(0), 1);
        assert_eq!(arena.rank(1), 0);
        assert_eq!(arena.insert_packed_slice(1, &e0), Insertion::Innovative);
        assert_eq!(arena.rank(1), 1);
    }

    #[test]
    fn insert_packed_mut_reduces_in_callers_buffer() {
        let mut arena = BasisArena::<Gf256>::new(1, 2, 2);
        let mut row = Gf256::pack(&[Gf256::new(2), Gf256::ZERO]);
        assert_eq!(arena.insert_packed_mut(0, &mut row), Insertion::Innovative);
        // The buffer now holds the normalized row (pivot scaled to 1).
        assert_eq!(row, Gf256::pack(&[Gf256::ONE, Gf256::ZERO]));
        // A dependent row's coefficient prefix is annihilated in place.
        let mut dep = Gf256::pack(&[Gf256::new(7), Gf256::ZERO]);
        assert_eq!(arena.insert_packed_mut(0, &mut dep), Insertion::Redundant);
        assert_eq!(dep, vec![0, 0]);
    }

    #[test]
    fn would_be_innovative_matches_insert() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut arena = BasisArena::<Gf256>::new(1, 5, 5);
        for _ in 0..30 {
            let row = random_row::<Gf256>(&mut rng, 5);
            let predicted = arena.would_be_innovative_packed(0, &row);
            let actual = arena.insert_packed_slice(0, &row) == Insertion::Innovative;
            assert_eq!(predicted, actual);
        }
    }

    #[test]
    fn interleaved_materialization_matches_deferred() {
        // Forcing one node's payload flush mid-stream must not perturb any
        // node's verdicts or final solution.
        let mut rng = StdRng::seed_from_u64(33);
        let k = 5;
        let r = 4;
        let mut arena = BasisArena::<Gf256>::new(2, k, k + r);
        let mut oracle = BasisArena::<Gf256>::new(2, k, k + r);
        let mut buf = Vec::new();
        let mut step = 0;
        while !(arena.is_full(0) && arena.is_full(1)) {
            let node = rng.gen_range(0..2);
            let row = random_row::<Gf256>(&mut rng, k + r);
            assert_eq!(
                arena.insert_packed_slice(node, &row),
                oracle.insert_packed_slice(node, &row)
            );
            step += 1;
            if step % 3 == 0 && arena.rank(0) > 0 {
                // Materialize node 0 in `arena` only; `oracle` stays lazy.
                arena.copy_packed_row_into(0, arena.rank(0) - 1, &mut buf);
            }
        }
        for node in 0..2 {
            assert_eq!(arena.solution(node), oracle.solution(node));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_row_length_panics() {
        let mut arena = BasisArena::<Gf256>::new(1, 2, 3);
        let _ = arena.insert_packed_slice(0, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "pivot prefix")]
    fn tail_shorter_than_pivot_rejected_at_construction() {
        let _ = BasisArena::<Gf256>::new(1, 3, 2);
    }

    #[test]
    #[should_panic(expected = "partition the arena contiguously")]
    fn overlapping_shard_bounds_panic() {
        let mut arena = BasisArena::<Gf256>::new(4, 2, 2);
        let _ = arena.shards_mut(&[(0, 3), (2, 4)]);
    }
}
