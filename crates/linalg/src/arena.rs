//! A simulation-wide arena of echelon bases: every node's rows in one slab.
//!
//! A gossip simulation holds one decoder basis per node. Backing each with
//! its own growing [`EchelonBasis`](crate::EchelonBasis) means `n`
//! independently reallocating `Vec`s — fine at experiment scale, but at
//! `n = 10⁵` nodes with 1 KiB payloads it is both an allocation storm and a
//! locality loss. [`BasisArena`] instead owns a few contiguous byte slabs
//! with a fixed capacity of `pivot_width` rows per node (a basis can never
//! exceed rank `pivot_width`), plus one flat pivot table and one rank
//! counter per node. After construction, inserting rows performs **zero
//! heap allocation**: an incoming row is reduced in the caller's buffer (or
//! the arena's internal scratch) and, when innovative, copied into the
//! node's next row slot.
//!
//! The arena mirrors the [coefficient/payload split](crate::echelon) of
//! `EchelonBasis`: per node there is an eagerly reduced coefficient slab
//! (all rank/innovation decisions read only this), a payload slab whose
//! rows are appended raw, and an elimination log replayed onto the payloads
//! in fused multi-row passes only when payload bytes are observed. All
//! slabs are allocated zeroed, so physical memory is committed lazily by
//! the OS as ranks actually grow — an incomplete run touches only the rows
//! it stored.
//!
//! Elimination is literally the same code as `EchelonBasis` (the shared
//! `core_ops` functions), so a packet stream replayed through both produces
//! bit-identical verdicts, pivots and stored bytes; the differential suites
//! in `ag-rlnc` and the golden trajectory pins in `algebraic-gossip` lock
//! that equivalence end to end.
//!
//! # Examples
//!
//! ```
//! use ag_gf::{Field, Gf256, SlabField};
//! use ag_linalg::{BasisArena, Insertion};
//!
//! // Two nodes, width-2 bases, rows carry one payload symbol.
//! let mut arena = BasisArena::<Gf256>::new(2, 2, 3);
//! let row = Gf256::pack(&[Gf256::ONE, Gf256::ZERO, Gf256::new(9)]);
//! assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Innovative);
//! assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Redundant);
//! assert_eq!(arena.rank(0), 1);
//! assert_eq!(arena.rank(1), 0);
//! ```

use std::cell::RefCell;
use std::marker::PhantomData;

use ag_gf::SlabField;

use crate::echelon::{core_ops, Insertion};

/// Lazily maintained payload state for every node, mirroring the per-basis
/// ledger of [`EchelonBasis`](crate::EchelonBasis). Interior-mutable
/// because materialization is triggered from `&self` read paths.
#[derive(Debug, Clone)]
struct ArenaLedger {
    /// Payload tails: node `v`'s row `i` occupies `pay_bytes` bytes at
    /// offset `(v * pivot_width + i) * pay_bytes`. Rows `< flushed[v]` are
    /// materialized (reduced); later rows are raw as received.
    pay: Vec<u8>,
    /// Elimination logs: node `v`'s events pack at byte offset
    /// `v * pivot_width² * SYMBOL_BYTES` per [`core_ops::log_offset`].
    log: Vec<u8>,
    /// Per-node count of events already replayed onto `pay`.
    flushed: Vec<usize>,
}

/// Reusable scratch buffers; transient, never part of logical state.
#[derive(Debug, Clone)]
struct ArenaScratch {
    /// Row-indexed reduction multipliers.
    factors: Vec<u8>,
    /// Row-indexed back-substitution multipliers.
    back: Vec<u8>,
    /// Coefficient-prefix probe row for `&self` innovation verdicts.
    probe: Vec<u8>,
    /// Row copy for [`BasisArena::insert_packed_slice`].
    insert: Vec<u8>,
}

/// All of a simulation's echelon bases in preallocated slabs — see the
/// [module docs](self).
///
/// Unlike [`EchelonBasis`](crate::EchelonBasis), whose row length is
/// learned from the first inserted row, an arena fixes `row_elems`
/// (coefficients + augmented tail) at construction; every row must match.
/// Shape violations are bugs in the caller's wiring, not data-dependent
/// conditions, so the arena asserts rather than returning typed errors —
/// the decoder layer above re-checks shapes where untrusted input enters.
#[derive(Debug, Clone)]
pub struct BasisArena<F> {
    /// Number of per-node bases.
    nodes: usize,
    /// Pivot (coefficient) width of every basis — also the per-node row
    /// capacity.
    pivot_width: usize,
    /// Symbols per row (pivot prefix + augmented tail), fixed up front.
    row_elems: usize,
    /// Flat pivot tables: node `v`'s table is
    /// `pivots[v * pivot_width .. (v + 1) * pivot_width]`, mapping a pivot
    /// column to the node-local index of the stored row.
    pivots: Vec<Option<usize>>,
    /// Row-indexed inverse of `pivots`: node `v`'s stored row `i` has
    /// pivot column `pivot_cols[v * pivot_width + i]`. Lets the reduction
    /// gather iterate stored rows (`O(rank)`) instead of scanning columns.
    pivot_cols: Vec<usize>,
    /// Per-node rank.
    ranks: Vec<usize>,
    /// Reduced coefficient prefixes: node `v`'s row `i` occupies
    /// `coeff_bytes` bytes at offset `(v * pivot_width + i) * coeff_bytes`.
    /// Always fully reduced (Gauss–Jordan).
    coeff: Vec<u8>,
    /// Raw payload tails + elimination logs, replayed on demand.
    ledger: RefCell<ArenaLedger>,
    /// Reusable buffers (transient).
    scratch: RefCell<ArenaScratch>,
    _field: PhantomData<F>,
}

impl<F: SlabField> BasisArena<F> {
    /// Creates an arena of `nodes` empty bases with `pivot_width` leading
    /// coefficients and `row_elems` total symbols per row.
    ///
    /// Allocates the full coefficient, payload and elimination-log slabs up
    /// front (zeroed — the OS commits pages lazily): per node,
    /// `pivot_width²` coefficient symbols, `pivot_width · tail` payload
    /// symbols and `pivot_width²` log symbols.
    ///
    /// # Panics
    ///
    /// Panics if `pivot_width == 0` or `row_elems < pivot_width`.
    #[must_use]
    pub fn new(nodes: usize, pivot_width: usize, row_elems: usize) -> Self {
        assert!(pivot_width > 0, "pivot width must be positive");
        assert!(
            row_elems >= pivot_width,
            "rows must at least cover the pivot prefix"
        );
        let sb = F::SYMBOL_BYTES;
        let kb = pivot_width * sb;
        let pb = (row_elems - pivot_width) * sb;
        BasisArena {
            nodes,
            pivot_width,
            row_elems,
            pivots: vec![None; nodes * pivot_width],
            pivot_cols: vec![0; nodes * pivot_width],
            ranks: vec![0; nodes],
            coeff: vec![0; nodes * pivot_width * kb],
            ledger: RefCell::new(ArenaLedger {
                pay: vec![0; nodes * pivot_width * pb],
                log: vec![0; nodes * pivot_width * pivot_width * sb],
                flushed: vec![0; nodes],
            }),
            scratch: RefCell::new(ArenaScratch {
                factors: Vec::with_capacity(kb),
                back: Vec::with_capacity(kb),
                probe: Vec::with_capacity(kb),
                insert: Vec::with_capacity(row_elems * sb),
            }),
            _field: PhantomData,
        }
    }

    /// Number of per-node bases.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The pivot (coefficient) width of every basis.
    #[must_use]
    pub fn pivot_width(&self) -> usize {
        self.pivot_width
    }

    /// Symbols per row (pivot prefix + augmented tail).
    #[must_use]
    pub fn row_elems(&self) -> usize {
        self.row_elems
    }

    /// Bytes per row.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_elems * F::SYMBOL_BYTES
    }

    /// Bytes of the packed coefficient prefix of every row.
    #[must_use]
    pub fn coeff_bytes(&self) -> usize {
        self.pivot_width * F::SYMBOL_BYTES
    }

    /// Bytes of the payload tail of every row.
    #[must_use]
    pub fn pay_bytes(&self) -> usize {
        (self.row_elems - self.pivot_width) * F::SYMBOL_BYTES
    }

    /// Node `node`'s current rank.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn rank(&self, node: usize) -> usize {
        self.ranks[node]
    }

    /// True once node `node`'s basis spans the full coefficient space.
    #[must_use]
    pub fn is_full(&self, node: usize) -> bool {
        self.ranks[node] == self.pivot_width
    }

    /// Byte offset of node `node`'s first coefficient row slot.
    #[inline]
    fn coeff_base(&self, node: usize) -> usize {
        node * self.pivot_width * self.coeff_bytes()
    }

    /// Node `node`'s stored coefficient rows as one contiguous slab.
    #[inline]
    fn node_coeff(&self, node: usize) -> &[u8] {
        let base = self.coeff_base(node);
        &self.coeff[base..base + self.ranks[node] * self.coeff_bytes()]
    }

    /// Node `node`'s pivot table.
    #[inline]
    fn node_pivots(&self, node: usize) -> &[Option<usize>] {
        &self.pivots[node * self.pivot_width..(node + 1) * self.pivot_width]
    }

    /// The reduced coefficient prefix of row `i` of node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank(node)`.
    #[must_use]
    pub fn coeff_row(&self, node: usize, i: usize) -> &[u8] {
        assert!(i < self.ranks[node], "row index out of bounds");
        let kb = self.coeff_bytes();
        let start = self.coeff_base(node) + i * kb;
        &self.coeff[start..start + kb]
    }

    /// Iterates over node `node`'s stored rows' reduced coefficient
    /// prefixes, in insertion order — the same order
    /// [`EchelonBasis::coeff_rows`](crate::EchelonBasis::coeff_rows)
    /// yields, which recoders rely on for identical coefficient draws.
    /// Payloads are untouched.
    pub fn coeff_rows(&self, node: usize) -> impl Iterator<Item = &[u8]> {
        self.node_coeff(node).chunks_exact(self.coeff_bytes())
    }

    /// Materializes full row `i` of node `node` (coefficients + reduced
    /// payload) into `out`, replaying the node's pending payload
    /// elimination first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank(node)`.
    pub fn copy_packed_row_into(&self, node: usize, i: usize, out: &mut Vec<u8>) {
        assert!(i < self.ranks[node], "row index out of bounds");
        self.flush_node(node);
        let pb = self.pay_bytes();
        out.clear();
        out.extend_from_slice(self.coeff_row(node, i));
        let led = self.ledger.borrow();
        let start = (node * self.pivot_width + i) * pb;
        out.extend_from_slice(&led.pay[start..start + pb]);
    }

    /// Accumulates `Σᵢ factors[i] · row_i` of node `node`'s stored rows
    /// into `out` (`out += …`), materializing the node's payloads first.
    /// `factors` holds one packed symbol per stored row; zero factors are
    /// skipped. This is the recoder's emit kernel: two fused gathers per
    /// packet.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is not exactly `rank(node)` packed symbols or
    /// `out` is not exactly [`BasisArena::row_bytes`] long.
    pub fn accumulate_rows_into(&self, node: usize, factors: &[u8], out: &mut [u8]) {
        assert_eq!(
            factors.len(),
            self.ranks[node] * F::SYMBOL_BYTES,
            "one packed factor per stored row"
        );
        assert_eq!(out.len(), self.row_bytes(), "out must be one full row");
        self.flush_node(node);
        let (oc, op) = out.split_at_mut(self.coeff_bytes());
        F::mul_add_multi(factors, self.node_coeff(node), oc);
        let led = self.ledger.borrow();
        let pb = self.pay_bytes();
        let base = node * self.pivot_width * pb;
        F::mul_add_multi(factors, &led.pay[base..base + self.ranks[node] * pb], op);
    }

    /// Replays node `node`'s pending elimination events onto its payload
    /// rows. Idempotent; a no-op when nothing is pending or rows carry no
    /// payload.
    fn flush_node(&self, node: usize) {
        let mut led = self.ledger.borrow_mut();
        let rank = self.ranks[node];
        let pb = self.pay_bytes();
        if pb == 0 {
            led.flushed[node] = rank;
            return;
        }
        let k = self.pivot_width;
        let sb = F::SYMBOL_BYTES;
        let ArenaLedger { pay, log, flushed } = &mut *led;
        let pay = &mut pay[node * k * pb..(node * k + rank) * pb];
        let log = &log[node * k * k * sb..(node + 1) * k * k * sb];
        while flushed[node] < rank {
            core_ops::replay_event::<F>(pay, log, flushed[node], pb);
            flushed[node] += 1;
        }
    }

    /// Inserts a packed row into node `node`'s basis, reducing its
    /// coefficient prefix **in place** in the caller's buffer (which is
    /// clobbered: on return the prefix holds the reduced/normalized
    /// remainder, while the payload tail is untouched — its elimination is
    /// deferred to the node's log). This is the zero-copy hot path for
    /// callers that own a reusable row buffer.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `row.len() != row_bytes()`.
    pub fn insert_packed_mut(&mut self, node: usize, row: &mut [u8]) -> Insertion {
        let rb = self.row_bytes();
        assert_eq!(
            row.len(),
            rb,
            "packed row length mismatch: got {}, arena rows are {rb} bytes",
            row.len()
        );
        let sb = F::SYMBOL_BYTES;
        let k = self.pivot_width;
        let kb = k * sb;
        let rank = self.ranks[node];
        let (crow, pay_in) = row.split_at_mut(kb);
        let sc = self.scratch.get_mut();
        let cbase = node * k * kb;
        let Some(pivot_col) = core_ops::reduce_coeff::<F>(
            &self.pivot_cols[node * k..node * k + rank],
            &self.coeff[cbase..cbase + rank * kb],
            crow,
            &mut sc.factors,
        ) else {
            return Insertion::Redundant;
        };
        let (existing, slot) = self.coeff[cbase..cbase + (rank + 1) * kb].split_at_mut(rank * kb);
        let pinv = core_ops::normalize_and_back_substitute::<F>(
            existing,
            rank,
            pivot_col,
            crow,
            &mut sc.back,
        );
        slot.copy_from_slice(crow);
        // Payload: raw memcpy now, elimination deferred to the log.
        let led = self.ledger.get_mut();
        let pb = (self.row_elems - k) * sb;
        let pstart = (node * k + rank) * pb;
        led.pay[pstart..pstart + pb].copy_from_slice(pay_in);
        let lbase = node * k * k * sb + core_ops::log_offset::<F>(rank);
        led.log[lbase..lbase + rank * sb].copy_from_slice(&sc.factors);
        pinv.write_symbol(&mut led.log[lbase + rank * sb..]);
        led.log[lbase + (rank + 1) * sb..lbase + (2 * rank + 1) * sb].copy_from_slice(&sc.back);
        self.pivots[node * k + pivot_col] = Some(rank);
        self.pivot_cols[node * k + rank] = pivot_col;
        self.ranks[node] = rank + 1;
        Insertion::Innovative
    }

    /// Borrowing variant of [`BasisArena::insert_packed_mut`]: copies the
    /// row into the arena's internal scratch buffer first. Still
    /// allocation-free once the scratch has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `row.len() != row_bytes()`.
    pub fn insert_packed_slice(&mut self, node: usize, row: &[u8]) -> Insertion {
        let mut buf = std::mem::take(&mut self.scratch.get_mut().insert);
        buf.clear();
        buf.extend_from_slice(row);
        let outcome = self.insert_packed_mut(node, &mut buf);
        self.scratch.get_mut().insert = buf;
        outcome
    }

    /// Would this packed row raise node `node`'s rank? Non-mutating; `row`
    /// may be a pivot-prefix-only slab or a full row — only the prefix is
    /// read, through reusable scratch buffers, so the probe is
    /// allocation-free once warmed up and never touches payload state.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the packed pivot prefix.
    #[must_use]
    pub fn would_be_innovative_packed(&self, node: usize, row: &[u8]) -> bool {
        let kb = self.coeff_bytes();
        assert!(row.len() >= kb, "row shorter than the packed pivot prefix");
        let mut sc = self.scratch.borrow_mut();
        let ArenaScratch { factors, probe, .. } = &mut *sc;
        probe.clear();
        probe.extend_from_slice(&row[..kb]);
        core_ops::reduce_coeff::<F>(
            &self.pivot_cols[node * self.pivot_width..node * self.pivot_width + self.ranks[node]],
            self.node_coeff(node),
            probe,
            factors,
        )
        .is_some()
    }

    /// Once node `node` is full, extracts its solution exactly as
    /// [`EchelonBasis::solution`](crate::EchelonBasis::solution): row `i`
    /// of the result is the augmented tail of the equation whose
    /// coefficient vector is the `i`-th unit vector. Settles the node's
    /// deferred payload elimination in one blocked replay first.
    #[must_use]
    pub fn solution(&self, node: usize) -> Option<Vec<Vec<F>>> {
        if !self.is_full(node) {
            return None;
        }
        self.flush_node(node);
        let pb = self.pay_bytes();
        let led = self.ledger.borrow();
        let pivots = self.node_pivots(node);
        let mut out = Vec::with_capacity(self.pivot_width);
        for (c, pivot) in pivots.iter().enumerate() {
            let ri = pivot.expect("full basis has all pivots");
            debug_assert!(
                (0..self.pivot_width).all(|j| {
                    let v: F = core_ops::col::<F>(self.coeff_row(node, ri), j);
                    if j == c {
                        v == F::ONE
                    } else {
                        v.is_zero()
                    }
                }),
                "fully reduced basis rows must be unit vectors"
            );
            let start = (node * self.pivot_width + ri) * pb;
            out.push(F::unpack(&led.pay[start..start + pb]));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EchelonBasis;
    use ag_gf::{Field, Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random augmented row over F.
    fn random_row<F: SlabField>(rng: &mut StdRng, elems: usize) -> Vec<u8> {
        let row: Vec<F> = (0..elems).map(|_| F::random(rng)).collect();
        F::pack(&row)
    }

    /// The load-bearing property: an arena node and a standalone
    /// `EchelonBasis` fed the same stream stay bit-identical — verdicts,
    /// ranks, stored rows, and solutions.
    fn differential_vs_echelon<F: SlabField>(seed: u64, k: usize, tail: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = 3;
        let elems = k + tail;
        let mut arena = BasisArena::<F>::new(nodes, k, elems);
        let mut bases: Vec<EchelonBasis<F>> = (0..nodes).map(|_| EchelonBasis::new(k)).collect();
        for _ in 0..6 * k {
            let node = rng.gen_range(0..nodes);
            let row = random_row::<F>(&mut rng, elems);
            let got = arena.insert_packed_slice(node, &row);
            let want = bases[node].try_insert_packed(row).expect("shape-valid row");
            assert_eq!(got, want);
            assert_eq!(arena.rank(node), bases[node].rank());
        }
        let mut arena_row = Vec::new();
        let mut basis_row = Vec::new();
        for node in 0..nodes {
            assert_eq!(arena.is_full(node), bases[node].is_full());
            let arena_headers: Vec<&[u8]> = arena.coeff_rows(node).collect();
            let basis_headers: Vec<&[u8]> = bases[node].coeff_rows().collect();
            assert_eq!(arena_headers, basis_headers, "coefficient rows diverged");
            for i in 0..arena.rank(node) {
                arena.copy_packed_row_into(node, i, &mut arena_row);
                bases[node].copy_packed_row_into(i, &mut basis_row);
                assert_eq!(arena_row, basis_row, "materialized rows diverged");
            }
            if arena.is_full(node) {
                assert_eq!(arena.solution(node), bases[node].solution());
            }
        }
    }

    #[test]
    fn arena_matches_echelon_gf256() {
        for seed in 0..4 {
            differential_vs_echelon::<Gf256>(seed, 6, 3);
        }
    }

    #[test]
    fn arena_matches_echelon_gf2() {
        // GF(2) produces many redundant rows — exercises the annihilation
        // path heavily.
        for seed in 0..4 {
            differential_vs_echelon::<Gf2>(seed, 8, 2);
        }
    }

    #[test]
    fn full_node_rejects_everything_without_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        let k = 4;
        let mut arena = BasisArena::<Gf256>::new(1, k, k);
        while !arena.is_full(0) {
            let row = random_row::<Gf256>(&mut rng, k);
            arena.insert_packed_slice(0, &row);
        }
        for _ in 0..20 {
            let row = random_row::<Gf256>(&mut rng, k);
            assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Redundant);
        }
        assert_eq!(arena.rank(0), k);
    }

    #[test]
    fn nodes_are_independent() {
        let mut arena = BasisArena::<Gf256>::new(2, 2, 2);
        let e0 = Gf256::pack(&[Gf256::ONE, Gf256::ZERO]);
        assert_eq!(arena.insert_packed_slice(0, &e0), Insertion::Innovative);
        assert_eq!(arena.rank(0), 1);
        assert_eq!(arena.rank(1), 0);
        assert_eq!(arena.insert_packed_slice(1, &e0), Insertion::Innovative);
        assert_eq!(arena.rank(1), 1);
    }

    #[test]
    fn insert_packed_mut_reduces_in_callers_buffer() {
        let mut arena = BasisArena::<Gf256>::new(1, 2, 2);
        let mut row = Gf256::pack(&[Gf256::new(2), Gf256::ZERO]);
        assert_eq!(arena.insert_packed_mut(0, &mut row), Insertion::Innovative);
        // The buffer now holds the normalized row (pivot scaled to 1).
        assert_eq!(row, Gf256::pack(&[Gf256::ONE, Gf256::ZERO]));
        // A dependent row's coefficient prefix is annihilated in place.
        let mut dep = Gf256::pack(&[Gf256::new(7), Gf256::ZERO]);
        assert_eq!(arena.insert_packed_mut(0, &mut dep), Insertion::Redundant);
        assert_eq!(dep, vec![0, 0]);
    }

    #[test]
    fn would_be_innovative_matches_insert() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut arena = BasisArena::<Gf256>::new(1, 5, 5);
        for _ in 0..30 {
            let row = random_row::<Gf256>(&mut rng, 5);
            let predicted = arena.would_be_innovative_packed(0, &row);
            let actual = arena.insert_packed_slice(0, &row) == Insertion::Innovative;
            assert_eq!(predicted, actual);
        }
    }

    #[test]
    fn interleaved_materialization_matches_deferred() {
        // Forcing one node's payload flush mid-stream must not perturb any
        // node's verdicts or final solution.
        let mut rng = StdRng::seed_from_u64(33);
        let k = 5;
        let r = 4;
        let mut arena = BasisArena::<Gf256>::new(2, k, k + r);
        let mut oracle = BasisArena::<Gf256>::new(2, k, k + r);
        let mut buf = Vec::new();
        let mut step = 0;
        while !(arena.is_full(0) && arena.is_full(1)) {
            let node = rng.gen_range(0..2);
            let row = random_row::<Gf256>(&mut rng, k + r);
            assert_eq!(
                arena.insert_packed_slice(node, &row),
                oracle.insert_packed_slice(node, &row)
            );
            step += 1;
            if step % 3 == 0 && arena.rank(0) > 0 {
                // Materialize node 0 in `arena` only; `oracle` stays lazy.
                arena.copy_packed_row_into(0, arena.rank(0) - 1, &mut buf);
            }
        }
        for node in 0..2 {
            assert_eq!(arena.solution(node), oracle.solution(node));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_row_length_panics() {
        let mut arena = BasisArena::<Gf256>::new(1, 2, 3);
        let _ = arena.insert_packed_slice(0, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "pivot prefix")]
    fn tail_shorter_than_pivot_rejected_at_construction() {
        let _ = BasisArena::<Gf256>::new(1, 3, 2);
    }
}
