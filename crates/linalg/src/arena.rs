//! A simulation-wide arena of echelon bases: every node's rows in one slab.
//!
//! A gossip simulation holds one decoder basis per node. Backing each with
//! its own growing [`EchelonBasis`](crate::EchelonBasis) means `n`
//! independently reallocating `Vec`s — fine at experiment scale, but at
//! `n = 10⁵` nodes with 1 KiB payloads it is both an allocation storm and a
//! locality loss. [`BasisArena`] instead owns **one** contiguous byte slab
//! with a fixed capacity of `pivot_width` rows per node (a basis can never
//! exceed rank `pivot_width`), plus one flat pivot table and one rank
//! counter per node. After construction, inserting rows performs **zero
//! heap allocation**: an incoming row is reduced in the caller's buffer (or
//! the arena's internal scratch) and, when innovative, copied into the
//! node's next row slot.
//!
//! The arena is allocated zeroed, so physical memory is committed lazily by
//! the OS as ranks actually grow — an incomplete run touches only the rows
//! it stored.
//!
//! Elimination is literally the same code as `EchelonBasis` (the shared
//! `core_ops` functions), so a packet stream replayed through both produces
//! bit-identical verdicts, pivots and stored bytes; the differential suites
//! in `ag-rlnc` and the golden trajectory pins in `algebraic-gossip` lock
//! that equivalence end to end.
//!
//! # Examples
//!
//! ```
//! use ag_gf::{Field, Gf256, SlabField};
//! use ag_linalg::{BasisArena, Insertion};
//!
//! // Two nodes, width-2 bases, rows carry one payload symbol.
//! let mut arena = BasisArena::<Gf256>::new(2, 2, 3);
//! let row = Gf256::pack(&[Gf256::ONE, Gf256::ZERO, Gf256::new(9)]);
//! assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Innovative);
//! assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Redundant);
//! assert_eq!(arena.rank(0), 1);
//! assert_eq!(arena.rank(1), 0);
//! ```

use std::marker::PhantomData;

use ag_gf::SlabField;

use crate::echelon::{core_ops, Insertion};

/// All of a simulation's echelon bases in one preallocated slab — see the
/// [module docs](self).
///
/// Unlike [`EchelonBasis`](crate::EchelonBasis), whose row length is
/// learned from the first inserted row, an arena fixes `row_elems`
/// (coefficients + augmented tail) at construction; every row must match.
/// Shape violations are bugs in the caller's wiring, not data-dependent
/// conditions, so the arena asserts rather than returning typed errors —
/// the decoder layer above re-checks shapes where untrusted input enters.
#[derive(Debug, Clone)]
pub struct BasisArena<F> {
    /// Number of per-node bases.
    nodes: usize,
    /// Pivot (coefficient) width of every basis — also the per-node row
    /// capacity.
    pivot_width: usize,
    /// Symbols per row (pivot prefix + augmented tail), fixed up front.
    row_elems: usize,
    /// Flat pivot tables: node `v`'s table is
    /// `pivots[v * pivot_width .. (v + 1) * pivot_width]`, mapping a pivot
    /// column to the node-local index of the stored row.
    pivots: Vec<Option<usize>>,
    /// Per-node rank.
    ranks: Vec<usize>,
    /// All rows: node `v`'s row `i` occupies `row_bytes` bytes at offset
    /// `(v * pivot_width + i) * row_bytes`.
    storage: Vec<u8>,
    /// Reusable reduction buffer for [`BasisArena::insert_packed_slice`].
    scratch: Vec<u8>,
    _field: PhantomData<F>,
}

impl<F: SlabField> BasisArena<F> {
    /// Creates an arena of `nodes` empty bases with `pivot_width` leading
    /// coefficients and `row_elems` total symbols per row.
    ///
    /// Allocates the full `nodes · pivot_width · row_elems` symbol slab up
    /// front (zeroed — the OS commits pages lazily).
    ///
    /// # Panics
    ///
    /// Panics if `pivot_width == 0` or `row_elems < pivot_width`.
    #[must_use]
    pub fn new(nodes: usize, pivot_width: usize, row_elems: usize) -> Self {
        assert!(pivot_width > 0, "pivot width must be positive");
        assert!(
            row_elems >= pivot_width,
            "rows must at least cover the pivot prefix"
        );
        let row_bytes = row_elems * F::SYMBOL_BYTES;
        BasisArena {
            nodes,
            pivot_width,
            row_elems,
            pivots: vec![None; nodes * pivot_width],
            ranks: vec![0; nodes],
            storage: vec![0; nodes * pivot_width * row_bytes],
            scratch: Vec::new(),
            _field: PhantomData,
        }
    }

    /// Number of per-node bases.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The pivot (coefficient) width of every basis.
    #[must_use]
    pub fn pivot_width(&self) -> usize {
        self.pivot_width
    }

    /// Symbols per row (pivot prefix + augmented tail).
    #[must_use]
    pub fn row_elems(&self) -> usize {
        self.row_elems
    }

    /// Bytes per row.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_elems * F::SYMBOL_BYTES
    }

    /// Node `node`'s current rank.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn rank(&self, node: usize) -> usize {
        self.ranks[node]
    }

    /// True once node `node`'s basis spans the full coefficient space.
    #[must_use]
    pub fn is_full(&self, node: usize) -> bool {
        self.ranks[node] == self.pivot_width
    }

    /// Byte offset of node `node`'s first row slot.
    #[inline]
    fn base(&self, node: usize) -> usize {
        node * self.pivot_width * self.row_bytes()
    }

    /// Node `node`'s stored rows as one contiguous packed slab.
    #[inline]
    fn node_rows(&self, node: usize) -> &[u8] {
        let base = self.base(node);
        &self.storage[base..base + self.ranks[node] * self.row_bytes()]
    }

    /// Node `node`'s pivot table.
    #[inline]
    fn node_pivots(&self, node: usize) -> &[Option<usize>] {
        &self.pivots[node * self.pivot_width..(node + 1) * self.pivot_width]
    }

    /// Row `i` of node `node` as a packed byte slab.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank(node)`.
    #[must_use]
    pub fn packed_row(&self, node: usize, i: usize) -> &[u8] {
        assert!(i < self.ranks[node], "row index out of bounds");
        let rb = self.row_bytes();
        let start = self.base(node) + i * rb;
        &self.storage[start..start + rb]
    }

    /// Iterates over node `node`'s stored rows in insertion order — the
    /// same order [`EchelonBasis::packed_rows`](crate::EchelonBasis::packed_rows)
    /// yields, which recoders rely on for identical coefficient draws.
    pub fn packed_rows(&self, node: usize) -> impl Iterator<Item = &[u8]> {
        self.node_rows(node).chunks_exact(self.row_bytes().max(1))
    }

    /// Inserts a packed row into node `node`'s basis, reducing it **in
    /// place** in the caller's buffer (which is clobbered: on return it
    /// holds the reduced/normalized remainder). This is the zero-copy hot
    /// path for callers that own a reusable row buffer.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `row.len() != row_bytes()`.
    pub fn insert_packed_mut(&mut self, node: usize, row: &mut [u8]) -> Insertion {
        let rb = self.row_bytes();
        assert_eq!(
            row.len(),
            rb,
            "packed row length mismatch: got {}, arena rows are {rb} bytes",
            row.len()
        );
        let rank = self.ranks[node];
        let Some(pivot_col) =
            core_ops::reduce::<F>(self.node_pivots(node), self.node_rows(node), rb, row, true)
        else {
            return Insertion::Redundant;
        };
        let base = self.base(node);
        core_ops::normalize_and_back_substitute::<F>(
            &mut self.storage[base..base + rank * rb],
            rb,
            rank,
            pivot_col,
            row,
        );
        self.storage[base + rank * rb..base + (rank + 1) * rb].copy_from_slice(row);
        self.pivots[node * self.pivot_width + pivot_col] = Some(rank);
        self.ranks[node] = rank + 1;
        Insertion::Innovative
    }

    /// Borrowing variant of [`BasisArena::insert_packed_mut`]: copies the
    /// row into the arena's internal scratch buffer first. Still
    /// allocation-free once the scratch has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `row.len() != row_bytes()`.
    pub fn insert_packed_slice(&mut self, node: usize, row: &[u8]) -> Insertion {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(row);
        let outcome = self.insert_packed_mut(node, &mut scratch);
        self.scratch = scratch;
        outcome
    }

    /// Would this packed row raise node `node`'s rank? Non-mutating; `row`
    /// may be a pivot-prefix-only slab. Allocates a temporary — a cold-path
    /// query, not part of the round loop.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the packed pivot prefix.
    #[must_use]
    pub fn would_be_innovative_packed(&self, node: usize, row: &[u8]) -> bool {
        assert!(row.len() >= self.pivot_width * F::SYMBOL_BYTES);
        let mut tmp = row.to_vec();
        core_ops::reduce::<F>(
            self.node_pivots(node),
            self.node_rows(node),
            self.row_bytes(),
            &mut tmp,
            false,
        )
        .is_some()
    }

    /// Once node `node` is full, extracts its solution exactly as
    /// [`EchelonBasis::solution`](crate::EchelonBasis::solution): row `i`
    /// of the result is the augmented tail of the equation whose
    /// coefficient vector is the `i`-th unit vector.
    #[must_use]
    pub fn solution(&self, node: usize) -> Option<Vec<Vec<F>>> {
        if !self.is_full(node) {
            return None;
        }
        let prefix = self.pivot_width * F::SYMBOL_BYTES;
        let pivots = self.node_pivots(node);
        let mut out = Vec::with_capacity(self.pivot_width);
        for (c, pivot) in pivots.iter().enumerate() {
            let ri = pivot.expect("full basis has all pivots");
            let row = self.packed_row(node, ri);
            debug_assert!(
                (0..self.pivot_width).all(|j| {
                    let v = core_ops::col::<F>(row, j);
                    if j == c {
                        v == F::ONE
                    } else {
                        v.is_zero()
                    }
                }),
                "fully reduced basis rows must be unit vectors"
            );
            out.push(F::unpack(&row[prefix..]));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EchelonBasis;
    use ag_gf::{Field, Gf2, Gf256};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random augmented row over F.
    fn random_row<F: SlabField>(rng: &mut StdRng, elems: usize) -> Vec<u8> {
        let row: Vec<F> = (0..elems).map(|_| F::random(rng)).collect();
        F::pack(&row)
    }

    /// The load-bearing property: an arena node and a standalone
    /// `EchelonBasis` fed the same stream stay bit-identical — verdicts,
    /// ranks, stored rows, and solutions.
    fn differential_vs_echelon<F: SlabField>(seed: u64, k: usize, tail: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = 3;
        let elems = k + tail;
        let mut arena = BasisArena::<F>::new(nodes, k, elems);
        let mut bases: Vec<EchelonBasis<F>> = (0..nodes).map(|_| EchelonBasis::new(k)).collect();
        for _ in 0..6 * k {
            let node = rng.gen_range(0..nodes);
            let row = random_row::<F>(&mut rng, elems);
            let got = arena.insert_packed_slice(node, &row);
            let want = bases[node].try_insert_packed(row).expect("shape-valid row");
            assert_eq!(got, want);
            assert_eq!(arena.rank(node), bases[node].rank());
        }
        for node in 0..nodes {
            assert_eq!(arena.is_full(node), bases[node].is_full());
            let arena_rows: Vec<&[u8]> = arena.packed_rows(node).collect();
            let basis_rows: Vec<&[u8]> = bases[node].packed_rows().collect();
            assert_eq!(arena_rows, basis_rows, "stored rows diverged");
            if arena.is_full(node) {
                assert_eq!(arena.solution(node), bases[node].solution());
            }
        }
    }

    #[test]
    fn arena_matches_echelon_gf256() {
        for seed in 0..4 {
            differential_vs_echelon::<Gf256>(seed, 6, 3);
        }
    }

    #[test]
    fn arena_matches_echelon_gf2() {
        // GF(2) produces many redundant rows — exercises the annihilation
        // path heavily.
        for seed in 0..4 {
            differential_vs_echelon::<Gf2>(seed, 8, 2);
        }
    }

    #[test]
    fn full_node_rejects_everything_without_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        let k = 4;
        let mut arena = BasisArena::<Gf256>::new(1, k, k);
        while !arena.is_full(0) {
            let row = random_row::<Gf256>(&mut rng, k);
            arena.insert_packed_slice(0, &row);
        }
        for _ in 0..20 {
            let row = random_row::<Gf256>(&mut rng, k);
            assert_eq!(arena.insert_packed_slice(0, &row), Insertion::Redundant);
        }
        assert_eq!(arena.rank(0), k);
    }

    #[test]
    fn nodes_are_independent() {
        let mut arena = BasisArena::<Gf256>::new(2, 2, 2);
        let e0 = Gf256::pack(&[Gf256::ONE, Gf256::ZERO]);
        assert_eq!(arena.insert_packed_slice(0, &e0), Insertion::Innovative);
        assert_eq!(arena.rank(0), 1);
        assert_eq!(arena.rank(1), 0);
        assert_eq!(arena.insert_packed_slice(1, &e0), Insertion::Innovative);
        assert_eq!(arena.rank(1), 1);
    }

    #[test]
    fn insert_packed_mut_reduces_in_callers_buffer() {
        let mut arena = BasisArena::<Gf256>::new(1, 2, 2);
        let mut row = Gf256::pack(&[Gf256::new(2), Gf256::ZERO]);
        assert_eq!(arena.insert_packed_mut(0, &mut row), Insertion::Innovative);
        // The buffer now holds the normalized row (pivot scaled to 1).
        assert_eq!(row, Gf256::pack(&[Gf256::ONE, Gf256::ZERO]));
        // A dependent row is annihilated in place.
        let mut dep = Gf256::pack(&[Gf256::new(7), Gf256::ZERO]);
        assert_eq!(arena.insert_packed_mut(0, &mut dep), Insertion::Redundant);
        assert_eq!(dep, vec![0, 0]);
    }

    #[test]
    fn would_be_innovative_matches_insert() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut arena = BasisArena::<Gf256>::new(1, 5, 5);
        for _ in 0..30 {
            let row = random_row::<Gf256>(&mut rng, 5);
            let predicted = arena.would_be_innovative_packed(0, &row);
            let actual = arena.insert_packed_slice(0, &row) == Insertion::Innovative;
            assert_eq!(predicted, actual);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_row_length_panics() {
        let mut arena = BasisArena::<Gf256>::new(1, 2, 3);
        let _ = arena.insert_packed_slice(0, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "pivot prefix")]
    fn tail_shorter_than_pivot_rejected_at_construction() {
        let _ = BasisArena::<Gf256>::new(1, 3, 2);
    }
}
