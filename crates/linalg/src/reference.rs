//! The scalar reference implementation of the echelon basis.
//!
//! [`ScalarBasis`] is the pre-slab `EchelonBasis`, preserved verbatim: rows
//! are `Vec<F>` and every elimination step runs one [`Field`] multiply at a
//! time. It exists for two jobs:
//!
//! 1. **Differential testing** — `ag-rlnc`'s `differential_decoder` suite
//!    replays every packet stream through both implementations and asserts
//!    identical verdicts, rank trajectories and decoded messages.
//! 2. **Benchmarking** — `ag-bench`'s `bench_decoder_slab` binary measures
//!    the packed [`EchelonBasis`](crate::EchelonBasis) against this baseline
//!    and records the speedup in `BENCH_decoder_slab.json`.
//!
//! Do not use it in protocol code; it is deliberately the slow path.

use ag_gf::Field;

use crate::echelon::Insertion;

/// A growing row-echelon basis with scalar (element-at-a-time) elimination.
///
/// Semantically identical to [`EchelonBasis`](crate::EchelonBasis); see its
/// docs for the invariants. Only the storage layout and inner loops differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarBasis<F> {
    /// Width of the pivot (coefficient) prefix of every row.
    pivot_width: usize,
    /// `pivots[c]` = index into `rows` of the row whose pivot is column `c`.
    pivots: Vec<Option<usize>>,
    /// Rows in reduced form.
    rows: Vec<Vec<F>>,
}

impl<F: Field> ScalarBasis<F> {
    /// Creates an empty basis whose rows have `pivot_width` leading
    /// coefficient entries.
    #[must_use]
    pub fn new(pivot_width: usize) -> Self {
        ScalarBasis {
            pivot_width,
            pivots: vec![None; pivot_width],
            rows: Vec::new(),
        }
    }

    /// The number of independent rows stored so far.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// The pivot (coefficient) width rows must have at minimum.
    #[must_use]
    pub fn pivot_width(&self) -> usize {
        self.pivot_width
    }

    /// True once the basis spans the full coefficient space.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.rank() == self.pivot_width
    }

    /// The stored (reduced) rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<F>] {
        &self.rows
    }

    /// Reduces `row` in place, stopping at the first pivot-free nonzero
    /// column; `None` when the row is annihilated.
    fn reduce(&self, row: &mut [F]) -> Option<usize> {
        for c in 0..self.pivot_width {
            if row[c].is_zero() {
                continue;
            }
            match self.pivots[c] {
                Some(ri) => {
                    let factor = row[c];
                    let stored = &self.rows[ri];
                    for (x, &s) in row.iter_mut().zip(stored) {
                        *x -= factor * s;
                    }
                    debug_assert!(row[c].is_zero());
                }
                None => return Some(c),
            }
        }
        None
    }

    /// Fully reduces `row` against every pivot column, returning the
    /// leading pivot-free column if the row survives.
    fn reduce_full(&self, row: &mut [F]) -> Option<usize> {
        let mut lead = None;
        for c in 0..self.pivot_width {
            if row[c].is_zero() {
                continue;
            }
            match self.pivots[c] {
                Some(ri) => {
                    let factor = row[c];
                    let stored = &self.rows[ri];
                    for (x, &s) in row.iter_mut().zip(stored) {
                        *x -= factor * s;
                    }
                    debug_assert!(row[c].is_zero());
                }
                None => {
                    if lead.is_none() {
                        lead = Some(c);
                    }
                }
            }
        }
        lead
    }

    /// Inserts an equation. Returns whether it was innovative.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() < pivot_width`, or if its length differs from
    /// previously inserted rows.
    pub fn insert(&mut self, mut row: Vec<F>) -> Insertion {
        assert!(
            row.len() >= self.pivot_width,
            "row of length {} shorter than pivot width {}",
            row.len(),
            self.pivot_width
        );
        if let Some(first) = self.rows.first() {
            assert_eq!(
                row.len(),
                first.len(),
                "all rows in a basis must have equal length"
            );
        }
        let Some(pivot_col) = self.reduce_full(&mut row) else {
            return Insertion::Redundant;
        };
        let pinv = row[pivot_col].inv().expect("pivot is nonzero");
        for x in &mut row {
            *x *= pinv;
        }
        for r in &mut self.rows {
            let factor = r[pivot_col];
            if !factor.is_zero() {
                for (x, &s) in r.iter_mut().zip(&row) {
                    *x -= factor * s;
                }
            }
        }
        self.pivots[pivot_col] = Some(self.rows.len());
        self.rows.push(row);
        Insertion::Innovative
    }

    /// Would `row` be innovative, without mutating the basis?
    #[must_use]
    pub fn would_be_innovative(&self, row: &[F]) -> bool {
        assert!(row.len() >= self.pivot_width);
        let mut tmp = row.to_vec();
        self.reduce(&mut tmp).is_some()
    }

    /// Once full, extracts the augmented tails in pivot order (the decoded
    /// source messages under RLNC augmentation).
    #[must_use]
    pub fn solution(&self) -> Option<Vec<Vec<F>>> {
        if !self.is_full() {
            return None;
        }
        let mut out = Vec::with_capacity(self.pivot_width);
        for c in 0..self.pivot_width {
            let ri = self.pivots[c].expect("full basis has all pivots");
            let row = &self.rows[ri];
            out.push(row[self.pivot_width..].to_vec());
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_gf::Gf256;

    #[test]
    fn scalar_basis_basics() {
        let mut b = ScalarBasis::<Gf256>::new(2);
        assert_eq!(
            b.insert(vec![Gf256::new(1), Gf256::new(1), Gf256::new(2)]),
            Insertion::Innovative
        );
        assert_eq!(
            b.insert(vec![Gf256::new(2), Gf256::new(2), Gf256::new(4)]),
            Insertion::Redundant
        );
        assert_eq!(
            b.insert(vec![Gf256::new(0), Gf256::new(1), Gf256::new(5)]),
            Insertion::Innovative
        );
        assert!(b.is_full());
        assert_eq!(
            b.solution().unwrap(),
            vec![vec![Gf256::new(7)], vec![Gf256::new(5)]]
        );
    }
}
