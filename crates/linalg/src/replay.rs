//! Runtime selection of the payload-replay schedule.
//!
//! The elimination log of an [`EchelonBasis`](crate::EchelonBasis) (or an
//! arena node) can be settled onto the payload slab two ways, both
//! bit-identical by exactness of field arithmetic:
//!
//! * [`ReplayMode::Rowwise`] — the PR 6 schedule: one
//!   [`ag_gf::SlabField::mul_add_multi`] gather + scale + scatter per
//!   logged event, streaming every already-materialized payload row from
//!   memory once per pending event.
//! * [`ReplayMode::Blocked`] — the BLAS-3 schedule: the pending events are
//!   first replayed onto an identity *coefficient* panel (`rank × rank`
//!   symbols, L1-resident), factoring the whole pending suffix of the log
//!   into one dense transform; the payload slab is then updated in a
//!   single [`ag_gf::SlabField::mul_add_block`] panel multiply that keeps
//!   a register-blocked destination panel live while the source rows
//!   stream through column tiles.
//! * [`ReplayMode::Auto`] (default) — picks per flush from the shape and
//!   the log alone: blocked when the pending suffix is large, payload rows
//!   are non-trivial, and the pending multipliers are dense enough that a
//!   dense panel multiply does not waste its `rank²` work (sparse logs —
//!   e.g. a source node's identity inserts — replay row-wise in `O(rank)`
//!   skipped events). The decision is deterministic in the basis state, and
//!   both schedules produce identical bytes, so it is invisible to
//!   results.
//!
//! Selection is process-global, resolved once on first use: an explicit
//! [`set_replay_mode`] call wins, else the `AG_LINALG_REPLAY` environment
//! variable (`rowwise` / `blocked` / `auto`), else [`ReplayMode::Auto`].
//! The benchmark ladder forces each mode to time the schedules in
//! isolation, exactly like `AG_GF_KERNEL` for the kernel rungs.

use std::sync::atomic::{AtomicU8, Ordering};

/// One payload-replay schedule. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayMode {
    /// One fused gather/scale/scatter pass per logged event.
    Rowwise,
    /// Factor the pending log into a dense transform, apply it as one
    /// blocked panel multiply.
    Blocked,
    /// Choose per flush from the pending-suffix shape and log density.
    Auto,
}

impl ReplayMode {
    /// All modes, in the order benchmark ladders report them.
    pub const ALL: [ReplayMode; 3] = [ReplayMode::Rowwise, ReplayMode::Blocked, ReplayMode::Auto];

    /// The mode's lower-case name, as accepted by `AG_LINALG_REPLAY`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReplayMode::Rowwise => "rowwise",
            ReplayMode::Blocked => "blocked",
            ReplayMode::Auto => "auto",
        }
    }

    /// Parses a mode name; `None` for anything unknown.
    #[must_use]
    pub fn from_name(s: &str) -> Option<ReplayMode> {
        match s.to_ascii_lowercase().as_str() {
            "rowwise" => Some(ReplayMode::Rowwise),
            "blocked" => Some(ReplayMode::Blocked),
            "auto" => Some(ReplayMode::Auto),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> ReplayMode {
        match v {
            0 => ReplayMode::Rowwise,
            1 => ReplayMode::Blocked,
            _ => ReplayMode::Auto,
        }
    }
}

/// `ACTIVE` sentinel: not yet resolved.
const UNSET: u8 = u8::MAX;

/// The resolved mode, or [`UNSET`].
static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);

/// The replay schedule every flush currently uses.
#[must_use]
pub fn replay_mode() -> ReplayMode {
    match ACTIVE.load(Ordering::Relaxed) {
        UNSET => {
            let m = resolve();
            ACTIVE.store(m as u8, Ordering::Relaxed);
            m
        }
        v => ReplayMode::from_u8(v),
    }
}

/// Forces the replay schedule for the whole process (benchmark bins use
/// this to time each schedule in isolation). Returns the mode installed.
pub fn set_replay_mode(mode: ReplayMode) -> ReplayMode {
    ACTIVE.store(mode as u8, Ordering::Relaxed);
    mode
}

/// First-use resolution: environment override, else [`ReplayMode::Auto`].
/// An unknown `AG_LINALG_REPLAY` value falls back to `Auto` rather than
/// erroring — a simulation should not abort over a typo'd tuning knob —
/// but the typo is reported once on stderr so it does not silently time
/// the wrong schedule.
fn resolve() -> ReplayMode {
    // ag-lint: allow(wall-clock) — AG_LINALG_REPLAY picks which proven-
    // bit-identical replay schedule runs; resolved once per process at
    // first use, so the choice cannot vary mid-simulation.
    if let Ok(v) = std::env::var("AG_LINALG_REPLAY") {
        let (mode, warning) = classify_env_value(&v);
        if let Some(w) = warning {
            WARN_UNKNOWN_ENV.call_once(|| eprintln!("{w}"));
        }
        return mode;
    }
    ReplayMode::Auto
}

/// Emits the unknown-`AG_LINALG_REPLAY` warning at most once per process.
static WARN_UNKNOWN_ENV: std::sync::Once = std::sync::Once::new();

/// Classifies an `AG_LINALG_REPLAY` value for first-use resolution: the
/// schedule to install plus a warning line for stderr when the value is
/// unknown. Split from [`resolve`] so the warning path is testable
/// without mutating the process environment.
#[must_use]
pub fn classify_env_value(v: &str) -> (ReplayMode, Option<String>) {
    match ReplayMode::from_name(v) {
        Some(m) => (m, None),
        None => (
            ReplayMode::Auto,
            Some(format!(
                "ag-linalg: unknown AG_LINALG_REPLAY value `{v}` \
                 (expected rowwise/blocked/auto); using auto"
            )),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in ReplayMode::ALL {
            assert_eq!(ReplayMode::from_name(m.name()), Some(m));
        }
        assert_eq!(ReplayMode::from_name("BLOCKED"), Some(ReplayMode::Blocked));
        assert_eq!(ReplayMode::from_name("nonsense"), None);
    }

    #[test]
    fn env_classification_warns_once_semantics() {
        for m in ReplayMode::ALL {
            assert_eq!(classify_env_value(m.name()), (m, None));
        }
        let (mode, warning) = classify_env_value("bloked");
        assert_eq!(mode, ReplayMode::Auto, "typos fall back to auto");
        let warning = warning.expect("unknown values must warn");
        assert!(warning.contains("AG_LINALG_REPLAY"), "{warning}");
        assert!(warning.contains("`bloked`"), "{warning}");
        assert_eq!(
            classify_env_value("BLOCKED"),
            (ReplayMode::Blocked, None),
            "case-insensitive values are not typos"
        );
    }

    #[test]
    fn set_replay_mode_installs() {
        let prev = replay_mode();
        assert_eq!(set_replay_mode(ReplayMode::Rowwise), ReplayMode::Rowwise);
        assert_eq!(replay_mode(), ReplayMode::Rowwise);
        set_replay_mode(prev);
    }
}
