//! Property-based tests for matrices and the incremental echelon basis.

use ag_gf::{Field, Gf2, Gf256};
use ag_linalg::{EchelonBasis, Matrix};
use proptest::prelude::*;

fn gf256_vec(len: usize) -> impl Strategy<Value = Vec<Gf256>> {
    proptest::collection::vec(any::<u8>().prop_map(Gf256::new), len)
}

fn gf256_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<Gf256>> {
    proptest::collection::vec(gf256_vec(cols), rows)
        .prop_map(|rows| Matrix::from_rows(rows).expect("equal-length rows"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rref_is_idempotent_on_rank(m in gf256_matrix(4, 6)) {
        let mut a = m.clone();
        let rank1 = a.rref();
        let mut b = a.clone();
        let rank2 = b.rref();
        prop_assert_eq!(rank1, rank2);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rank_bounded_by_min_dim(m in gf256_matrix(5, 3)) {
        prop_assert!(m.rank() <= 3);
    }

    #[test]
    fn rank_invariant_under_transpose(m in gf256_matrix(4, 7)) {
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }

    #[test]
    fn inverse_agrees_with_solve(m in gf256_matrix(4, 4), b in gf256_vec(4)) {
        match m.inverse() {
            Some(inv) => {
                let x1 = inv.matvec(&b).unwrap();
                let x2 = m.solve(&b).unwrap().expect("invertible => solvable");
                prop_assert_eq!(x1, x2);
            }
            None => prop_assert!(m.rank() < 4),
        }
    }

    #[test]
    fn matmul_distributes_over_rank(m in gf256_matrix(3, 3)) {
        // rank(M * M) <= rank(M)
        let sq = m.matmul(&m).unwrap();
        prop_assert!(sq.rank() <= m.rank());
    }

    #[test]
    fn echelon_rank_matches_matrix_rank(rows in proptest::collection::vec(gf256_vec(5), 1..10)) {
        let m = Matrix::from_rows(rows.clone()).unwrap();
        let mut basis = EchelonBasis::<Gf256>::new(5);
        for r in rows {
            basis.insert(r);
        }
        prop_assert_eq!(basis.rank(), m.rank());
    }

    #[test]
    fn echelon_insert_innovative_iff_rank_grows(rows in proptest::collection::vec(gf256_vec(4), 1..12)) {
        let mut basis = EchelonBasis::<Gf256>::new(4);
        for r in rows {
            let before = basis.rank();
            let innovative = basis.insert(r).is_innovative();
            let after = basis.rank();
            prop_assert_eq!(innovative, after == before + 1);
        }
    }

    #[test]
    fn gf2_echelon_rank_matches(rows in proptest::collection::vec(
        proptest::collection::vec(any::<bool>().prop_map(Gf2::from), 6), 1..15)) {
        let m = Matrix::from_rows(rows.clone()).unwrap();
        let mut basis = EchelonBasis::<Gf2>::new(6);
        for r in rows {
            basis.insert(r);
        }
        prop_assert_eq!(basis.rank(), m.rank());
    }

    #[test]
    fn solution_reproduces_random_messages(
        seed_rows in proptest::collection::vec(gf256_vec(3), 3),
        payload in proptest::collection::vec(gf256_vec(2), 3),
    ) {
        // Treat `payload` as the 3 source messages; build augmented unit rows
        // and random combinations; decoding must return the messages.
        let mut basis = EchelonBasis::<Gf256>::new(3);
        for (i, p) in payload.iter().enumerate() {
            let mut row = vec![Gf256::ZERO; 3];
            row[i] = Gf256::ONE;
            row.extend(p.iter().copied());
            basis.insert(row);
        }
        // Extra dependent rows from seed_rows-combinations must not corrupt.
        for coeffs in &seed_rows {
            let mut row = coeffs.clone();
            for j in 0..2 {
                let mut acc = Gf256::ZERO;
                for (i, p) in payload.iter().enumerate() {
                    acc += coeffs[i] * p[j];
                }
                row.push(acc);
            }
            basis.insert(row);
        }
        prop_assert_eq!(basis.solution().unwrap(), payload);
    }
}
