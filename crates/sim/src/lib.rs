//! Discrete gossip simulator with the paper's execution model.
//!
//! Section 2 of Avin et al. fixes the model this crate implements:
//!
//! * **Asynchronous time**: "at every timeslot, one node selected
//!   independently and uniformly at random takes an action and a single
//!   pair of nodes communicates. We consider n consecutive timeslots as one
//!   round." Messages are usable immediately.
//! * **Synchronous time**: "at every round, every node takes an action and
//!   selects a single communication partner. It is assumed that the
//!   information received in the current round will be available to a node
//!   for sending only at the beginning of the next round." The engine
//!   enforces this with compose-then-deliver rounds, and (optionally, on by
//!   default) discards the second message a node receives from the same
//!   sender within one round — the paper's simplifying assumption.
//! * **Actions**: [`Action::Push`], [`Action::Pull`], [`Action::Exchange`].
//! * **Communication models**: [`CommModel::Uniform`] (Definition 1) and
//!   [`CommModel::RoundRobin`] (Definition 2, the quasirandom model with a
//!   random initial pointer).
//!
//! Protocols implement the [`Protocol`] trait; [`Engine`] drives them under
//! either time model, injects optional message loss (an ablation beyond the
//! paper's lossless model), and returns [`RunStats`] with split drop
//! accounting (`dedup_dropped` vs `lost`). The engine's round loop is
//! built for large-n sweeps — persistent per-round scratch, hash-free
//! same-sender dedup, an incomplete-node completion sweep, and the
//! observer-free [`Engine::run_batch`] hot path; the pre-rework loop is
//! preserved in [`reference`] and differentially tested against it.
//!
//! Both engines call [`Protocol::on_round_start`] once before every round
//! (and at every n-timeslot boundary of the asynchronous model) — the
//! epoch-advance hook that lets protocols run over a *time-varying*
//! [`ag_graph::Topology`] ([`ag_graph::ScheduledTopology`] with seeded
//! churn schedules). [`PartnerSelector`] reads neighbors through the
//! topology view and keeps round-robin state as absolute contact counters,
//! so degree changes under churn never skip or repeat neighbors; static
//! graphs implement the view with no-ops and keep their exact
//! pre-abstraction behavior.
//!
//! For synchronous runs at very large n, [`ShardedEngine`] partitions the
//! node set across rayon workers and composes shards in parallel behind a
//! deterministic slot-ordered merge: protocols opt in via
//! [`ShardableProtocol`], and the result is a pure function of
//! `(seed, round, slot)` — bit-identical at every shard count and thread
//! count (see the module docs in `sharded`).

mod comm;
mod engine;
mod protocol;
pub mod reference;
mod sharded;
mod stats;

pub use comm::{CommModel, PartnerSelector};
pub use engine::{Engine, EngineConfig, TimeModel};
pub use protocol::{Action, ContactIntent, Protocol};
pub use sharded::{ProtocolShard, ShardableProtocol, ShardedEngine};
pub use stats::{RunStats, TrajectoryHash};
