//! Run statistics collected by the engine.

/// Everything measured during one protocol run.
///
/// Times are reported in *rounds* under both time models (the paper's
/// convention: 1 round = n asynchronous timeslots); `timeslots` carries the
/// raw slot count for asynchronous runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Whether the protocol reached global completion within the budget.
    pub completed: bool,
    /// Rounds elapsed at completion (or at the budget limit). For the
    /// asynchronous model this is `ceil(timeslots / n)`.
    pub rounds: u64,
    /// Raw timeslots (asynchronous model; equals `rounds * n` for the
    /// synchronous model).
    pub timeslots: u64,
    /// Messages delivered to protocol state.
    pub messages_delivered: u64,
    /// Messages composed but dropped by loss injection or same-sender
    /// round deduplication.
    pub messages_dropped: u64,
    /// Contacts where the chosen direction produced no message (e.g. an
    /// RLNC node with rank 0 has nothing to send).
    pub empty_sends: u64,
    /// Round at which each node first reported completion (`None` = never).
    pub node_completion_rounds: Vec<Option<u64>>,
}

impl RunStats {
    pub(crate) fn new(n: usize) -> Self {
        RunStats {
            completed: false,
            rounds: 0,
            timeslots: 0,
            messages_delivered: 0,
            messages_dropped: 0,
            empty_sends: 0,
            node_completion_rounds: vec![None; n],
        }
    }

    /// The round the last node finished, if all finished.
    #[must_use]
    pub fn last_completion_round(&self) -> Option<u64> {
        self.node_completion_rounds
            .iter()
            .copied()
            .collect::<Option<Vec<u64>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// The round the first node finished, if any did.
    #[must_use]
    pub fn first_completion_round(&self) -> Option<u64> {
        self.node_completion_rounds.iter().flatten().copied().min()
    }

    /// Total messages that entered the network (delivered + dropped).
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.messages_delivered + self.messages_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_round_helpers() {
        let mut s = RunStats::new(3);
        assert_eq!(s.last_completion_round(), None);
        assert_eq!(s.first_completion_round(), None);
        s.node_completion_rounds = vec![Some(4), Some(2), Some(9)];
        assert_eq!(s.last_completion_round(), Some(9));
        assert_eq!(s.first_completion_round(), Some(2));
        s.node_completion_rounds[1] = None;
        assert_eq!(s.last_completion_round(), None);
        assert_eq!(s.first_completion_round(), Some(4));
    }

    #[test]
    fn messages_sent_sums() {
        let mut s = RunStats::new(1);
        s.messages_delivered = 10;
        s.messages_dropped = 3;
        assert_eq!(s.messages_sent(), 13);
    }
}
