//! Run statistics collected by the engine.

/// Everything measured during one protocol run.
///
/// Times are reported in *rounds* under both time models (the paper's
/// convention: 1 round = n asynchronous timeslots); `timeslots` carries the
/// raw slot count for asynchronous runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Whether the protocol reached global completion within the budget.
    pub completed: bool,
    /// Rounds elapsed at completion (or at the budget limit).
    ///
    /// **Asynchronous convention:** always `ceil(timeslots / n)` — a
    /// partially elapsed round counts as a full round. The same ceiling
    /// convention is used everywhere rounds are derived from timeslots:
    /// this field, the per-node [`RunStats::node_completion_rounds`], and
    /// the round number passed to `run_observed` observers. A run that
    /// completes at exactly `m·n` timeslots therefore reports `m` rounds,
    /// and one that completes at `m·n + 1` reports `m + 1`.
    pub rounds: u64,
    /// Raw timeslots (asynchronous model; equals `rounds * n` for the
    /// synchronous model).
    pub timeslots: u64,
    /// Messages delivered to protocol state.
    pub messages_delivered: u64,
    /// Messages composed but discarded by the synchronous same-sender
    /// deduplication rule (the paper's "discard the second message from
    /// the same node in the same round" assumption). Always 0 when dedup
    /// is disabled and under the asynchronous model.
    pub dedup_dropped: u64,
    /// Messages composed but destroyed by loss injection. Always 0 when
    /// `loss_prob == 0` — dedup discards are *not* losses.
    pub lost: u64,
    /// Contacts where the chosen direction produced no message (e.g. an
    /// RLNC node with rank 0 has nothing to send).
    pub empty_sends: u64,
    /// Round at which each node first reported completion (`None` = never).
    pub node_completion_rounds: Vec<Option<u64>>,
}

impl RunStats {
    pub(crate) fn new(n: usize) -> Self {
        RunStats {
            completed: false,
            rounds: 0,
            timeslots: 0,
            messages_delivered: 0,
            dedup_dropped: 0,
            lost: 0,
            empty_sends: 0,
            node_completion_rounds: vec![None; n],
        }
    }

    /// The round the last node finished, if all finished.
    #[must_use]
    pub fn last_completion_round(&self) -> Option<u64> {
        self.node_completion_rounds
            .iter()
            .copied()
            .collect::<Option<Vec<u64>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// The round the first node finished, if any did.
    #[must_use]
    pub fn first_completion_round(&self) -> Option<u64> {
        self.node_completion_rounds.iter().flatten().copied().min()
    }

    /// Total messages that entered the network
    /// (delivered + dedup-dropped + lost).
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.messages_delivered + self.dedup_dropped + self.lost
    }

    /// Messages that were composed but never delivered, for any reason.
    #[must_use]
    pub fn messages_dropped(&self) -> u64 {
        self.dedup_dropped + self.lost
    }
}

/// Order-sensitive FNV-1a hash over a sequence of `u64` observations.
///
/// Used to *pin* per-round trajectories (e.g. the total decoder rank after
/// every round, fed from [`crate::Engine::run_observed`]) in golden tests:
/// a refactor of the arithmetic hot path must reproduce the exact same
/// trajectory hash or the simulation output changed. The hash is a pure
/// function of the observed values and their order — no platform-dependent
/// state — so pinned constants are portable.
///
/// # Examples
///
/// ```
/// use ag_sim::TrajectoryHash;
///
/// let mut h = TrajectoryHash::new();
/// h.observe(3);
/// h.observe(7);
/// let mut g = TrajectoryHash::new();
/// g.observe_slice(&[3, 7]);
/// assert_eq!(h.finish(), g.finish());
/// let mut swapped = TrajectoryHash::new();
/// swapped.observe_slice(&[7, 3]);
/// assert_ne!(h.finish(), swapped.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryHash {
    state: u64,
}

impl TrajectoryHash {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher (FNV-1a offset basis).
    #[must_use]
    pub fn new() -> Self {
        TrajectoryHash {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Feeds one observation (little-endian byte order).
    pub fn observe(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a slice of observations in order.
    pub fn observe_slice(&mut self, values: &[u64]) {
        for &v in values {
            self.observe(v);
        }
    }

    /// The current digest. The hasher can keep observing afterwards.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for TrajectoryHash {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_hash_is_order_sensitive_and_stable() {
        let mut h = TrajectoryHash::new();
        h.observe_slice(&[1, 2, 3]);
        // Same observations in the same order give the same digest…
        let mut h2 = TrajectoryHash::new();
        h2.observe(1);
        h2.observe(2);
        h2.observe(3);
        assert_eq!(h.finish(), h2.finish());
        // …and swapping the order changes it.
        let mut g = TrajectoryHash::new();
        g.observe_slice(&[3, 2, 1]);
        assert_ne!(h.finish(), g.finish());
        // Empty hasher has the offset basis; observing zero changes it.
        let mut z = TrajectoryHash::new();
        let empty = z.finish();
        z.observe(0);
        assert_ne!(z.finish(), empty);
    }

    #[test]
    fn completion_round_helpers() {
        let mut s = RunStats::new(3);
        assert_eq!(s.last_completion_round(), None);
        assert_eq!(s.first_completion_round(), None);
        s.node_completion_rounds = vec![Some(4), Some(2), Some(9)];
        assert_eq!(s.last_completion_round(), Some(9));
        assert_eq!(s.first_completion_round(), Some(2));
        s.node_completion_rounds[1] = None;
        assert_eq!(s.last_completion_round(), None);
        assert_eq!(s.first_completion_round(), Some(4));
    }

    #[test]
    fn messages_sent_sums() {
        let mut s = RunStats::new(1);
        s.messages_delivered = 10;
        s.dedup_dropped = 2;
        s.lost = 1;
        assert_eq!(s.messages_sent(), 13);
        assert_eq!(s.messages_dropped(), 3);
    }
}
