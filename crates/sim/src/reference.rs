//! The frozen pre-refactor round loop, preserved for differential testing
//! and the `bench_engine_scale` perf baseline.
//!
//! [`ReferenceEngine`] is the engine loop exactly as it existed before the
//! large-`n` rework of [`crate::Engine`]: it allocates a fresh intent
//! `Vec`, outbox `Vec` and dedup `HashSet` every synchronous round, sweeps
//! all `n` completion flags each round, and always runs through the
//! observer plumbing. Only the *accounting semantics* track the fixed
//! engine (the `dedup_dropped`/`lost` counter split, the ceiling rounds
//! convention, and the final mid-round observation under the asynchronous
//! model), so that for any protocol and seed it must produce bit-identical
//! [`RunStats`] and observer traces to [`crate::Engine`] — which is what
//! `crates/sim/tests/differential_engine.rs` asserts and what makes the
//! measured speedup in `BENCH_engine_scale.json` attributable to the loop
//! structure alone.
//!
//! Do not "optimize" this module: its value is being slow in exactly the
//! ways the old loop was.

use ag_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{EngineConfig, TimeModel};
use crate::protocol::Protocol;
use crate::stats::RunStats;

/// Drop-in, allocation-heavy counterpart of [`crate::Engine`].
///
/// # Examples
///
/// ```
/// use ag_sim::reference::ReferenceEngine;
/// use ag_sim::{Engine, EngineConfig};
/// # use ag_sim::{ContactIntent, Protocol};
/// # use ag_graph::NodeId;
/// # use rand::rngs::StdRng;
/// # struct Noop;
/// # impl Protocol for Noop {
/// #     type Msg = ();
/// #     fn num_nodes(&self) -> usize { 2 }
/// #     fn on_wakeup(&mut self, _: NodeId, _: &mut StdRng) -> Option<ContactIntent> { None }
/// #     fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> { None }
/// #     fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _: ()) {}
/// #     fn node_complete(&self, _: NodeId) -> bool { true }
/// # }
/// let cfg = EngineConfig::synchronous(7);
/// let fast = Engine::new(cfg).run(&mut Noop);
/// let slow = ReferenceEngine::new(cfg).run(&mut Noop);
/// assert_eq!(fast, slow);
/// ```
#[derive(Debug)]
pub struct ReferenceEngine {
    config: EngineConfig,
    rng: StdRng,
}

impl ReferenceEngine {
    /// Creates a reference engine with its own seeded RNG.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        ReferenceEngine {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the protocol to completion or budget; returns statistics.
    pub fn run<P: Protocol>(&mut self, proto: &mut P) -> RunStats {
        self.run_observed(proto, |_, _: &P| {})
    }

    /// Like [`ReferenceEngine::run`] but invokes `observer(round, proto)`
    /// after every completed round, with the same final mid-round
    /// observation contract as [`crate::Engine::run_observed`].
    pub fn run_observed<P: Protocol>(
        &mut self,
        proto: &mut P,
        mut observer: impl FnMut(u64, &P),
    ) -> RunStats {
        let n = proto.num_nodes();
        assert!(n > 0, "protocol must have at least one node");
        let mut stats = RunStats::new(n);
        let mut complete = vec![false; n];
        let mut incomplete = n;
        for (v, flag) in complete.iter_mut().enumerate() {
            if proto.node_complete(v) {
                stats.node_completion_rounds[v] = Some(0);
                *flag = true;
                incomplete -= 1;
            }
        }
        if incomplete == 0 {
            stats.completed = true;
            return stats;
        }
        match self.config.time_model {
            TimeModel::Synchronous => {
                while stats.rounds < self.config.max_rounds {
                    self.sync_round(proto, &mut stats, &mut complete, &mut incomplete);
                    observer(stats.rounds, proto);
                    if incomplete == 0 {
                        stats.completed = true;
                        break;
                    }
                }
            }
            TimeModel::Asynchronous => {
                let max_slots = self.config.max_rounds.saturating_mul(n as u64);
                while stats.timeslots < max_slots {
                    if stats.timeslots.is_multiple_of(n as u64) {
                        proto.on_round_start(stats.timeslots / n as u64 + 1);
                    }
                    self.async_slot(proto, &mut stats, &mut complete, &mut incomplete, n);
                    if stats.timeslots.is_multiple_of(n as u64) {
                        stats.rounds = stats.timeslots / n as u64;
                        observer(stats.rounds, proto);
                    }
                    if incomplete == 0 {
                        stats.completed = true;
                        break;
                    }
                }
                stats.rounds = stats.timeslots.div_ceil(n as u64);
                if stats.completed && !stats.timeslots.is_multiple_of(n as u64) {
                    observer(stats.rounds, proto);
                }
            }
        }
        stats
    }

    /// One synchronous round, pre-refactor shape: fresh per-round
    /// allocations, hash-set dedup at delivery time, full O(n) sweep.
    fn sync_round<P: Protocol>(
        &mut self,
        proto: &mut P,
        stats: &mut RunStats,
        complete: &mut [bool],
        incomplete: &mut usize,
    ) {
        let n = proto.num_nodes();
        // 0. Round-start hook — like the drop accounting, a semantic
        //    contract shared with the fast engine: dynamic topologies must
        //    see identical epoch sequences under both loops.
        proto.on_round_start(stats.rounds + 1);
        // 1. Every node wakes and declares its contact.
        let intents: Vec<_> = (0..n).map(|v| proto.on_wakeup(v, &mut self.rng)).collect();
        // 2. Compose all messages against the (still unmodified) round-
        //    start data state.
        let mut outbox: Vec<(NodeId, NodeId, u32, P::Msg)> = Vec::new();
        for (v, intent) in intents.iter().enumerate() {
            let Some(intent) = intent else { continue };
            let u = intent.partner;
            debug_assert_ne!(u, v, "self-contact");
            if intent.action.sends_forward() {
                match proto.compose(v, u, intent.tag, &mut self.rng) {
                    Some(m) => outbox.push((v, u, intent.tag, m)),
                    None => stats.empty_sends += 1,
                }
            }
            if intent.action.sends_backward() {
                match proto.compose(u, v, intent.tag, &mut self.rng) {
                    Some(m) => outbox.push((u, v, intent.tag, m)),
                    None => stats.empty_sends += 1,
                }
            }
        }
        // 3. Same-sender dedup (keep the first per (from, to) pair).
        // Insert-only membership probe: order is never observed.
        #[allow(clippy::disallowed_types)]
        let mut seen: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        for (from, to, tag, msg) in outbox {
            if self.config.dedup_same_sender && !seen.insert((from, to)) {
                stats.dedup_dropped += 1;
                // Not an optimization — the same discard hook the fast
                // engine invokes, so pooled protocols behave identically
                // under both loops.
                proto.discard(msg);
                continue;
            }
            // 4. Loss injection.
            if self.config.loss_prob > 0.0 && self.rng.gen_bool(self.config.loss_prob) {
                stats.lost += 1;
                proto.discard(msg);
                continue;
            }
            // 5. Delivery.
            proto.deliver(from, to, tag, msg);
            stats.messages_delivered += 1;
        }
        stats.rounds += 1;
        stats.timeslots += n as u64;
        // 6. Completion sweep over every node's flag.
        for (v, flag) in complete.iter_mut().enumerate() {
            if !*flag && proto.node_complete(v) {
                *flag = true;
                stats.node_completion_rounds[v] = Some(stats.rounds);
                *incomplete -= 1;
            }
        }
    }

    /// One asynchronous timeslot (identical to the fast engine's — the
    /// rework only touched the synchronous round and the outer loop).
    fn async_slot<P: Protocol>(
        &mut self,
        proto: &mut P,
        stats: &mut RunStats,
        complete: &mut [bool],
        incomplete: &mut usize,
        n: usize,
    ) {
        stats.timeslots += 1;
        let round_now = stats.timeslots.div_ceil(n as u64);
        let refresh = |proto: &P,
                       node: NodeId,
                       complete: &mut [bool],
                       incomplete: &mut usize,
                       stats: &mut RunStats| {
            if !complete[node] && proto.node_complete(node) {
                complete[node] = true;
                stats.node_completion_rounds[node] = Some(round_now);
                *incomplete -= 1;
            }
        };
        let v = self.rng.gen_range(0..n);
        let Some(intent) = proto.on_wakeup(v, &mut self.rng) else {
            refresh(proto, v, complete, incomplete, stats);
            return;
        };
        let u = intent.partner;
        debug_assert_ne!(u, v, "self-contact");
        let forward = if intent.action.sends_forward() {
            proto.compose(v, u, intent.tag, &mut self.rng)
        } else {
            None
        };
        let backward = if intent.action.sends_backward() {
            proto.compose(u, v, intent.tag, &mut self.rng)
        } else {
            None
        };
        if intent.action.sends_forward() && forward.is_none() {
            stats.empty_sends += 1;
        }
        if intent.action.sends_backward() && backward.is_none() {
            stats.empty_sends += 1;
        }
        for (from, to, msg) in [(v, u, forward), (u, v, backward)] {
            let Some(msg) = msg else { continue };
            if self.config.loss_prob > 0.0 && self.rng.gen_bool(self.config.loss_prob) {
                stats.lost += 1;
                proto.discard(msg);
                continue;
            }
            proto.deliver(from, to, intent.tag, msg);
            stats.messages_delivered += 1;
        }
        refresh(proto, v, complete, incomplete, stats);
        refresh(proto, u, complete, incomplete, stats);
    }
}
