//! The [`Protocol`] trait: what a gossip protocol must provide.

use ag_graph::NodeId;
use rand::rngs::StdRng;

/// The direction(s) of a gossip contact, from the initiator's viewpoint.
///
/// "…either the node pushes information to the partner (PUSH), pulls
/// information from the partner (PULL), or does both (EXCHANGE)."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Action {
    /// Initiator sends to partner.
    Push,
    /// Partner sends to initiator.
    Pull,
    /// Both directions (the paper's default).
    #[default]
    Exchange,
}

impl Action {
    /// Does this action send a message initiator → partner?
    #[must_use]
    pub fn sends_forward(self) -> bool {
        matches!(self, Action::Push | Action::Exchange)
    }

    /// Does this action send a message partner → initiator?
    #[must_use]
    pub fn sends_backward(self) -> bool {
        matches!(self, Action::Pull | Action::Exchange)
    }
}

/// A contact decided by a waking node: whom to talk to, in which
/// direction(s), and an opaque protocol-defined tag.
///
/// The `tag` travels into [`Protocol::compose`] so multi-phase protocols
/// (TAG interleaves a spanning-tree phase and an algebraic-gossip phase by
/// wakeup parity) know which sub-protocol this contact belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContactIntent {
    /// The chosen communication partner.
    pub partner: NodeId,
    /// Message direction(s).
    pub action: Action,
    /// Protocol-defined contact label (e.g. TAG phase).
    pub tag: u32,
}

impl ContactIntent {
    /// An EXCHANGE contact with tag 0 — the common case.
    #[must_use]
    pub fn exchange(partner: NodeId) -> Self {
        ContactIntent {
            partner,
            action: Action::Exchange,
            tag: 0,
        }
    }
}

/// A gossip protocol driven by the [`crate::Engine`].
///
/// The split between `on_wakeup` (may mutate *control* state: wakeup
/// counters, round-robin pointers) and `compose` (read-only: message
/// content derives from *data* state) is what lets one protocol
/// implementation run under both time models: in the synchronous model the
/// engine calls every node's `on_wakeup`, then composes **all** messages
/// from pre-round data state, then delivers them — so information received
/// in a round is available only from the next round, exactly as the paper
/// assumes.
pub trait Protocol {
    /// Message type carried between nodes.
    type Msg;

    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Round-start hook: both engines call this exactly once before round
    /// `round` (1-based) begins — ahead of every wakeup of a synchronous
    /// round, and ahead of the first timeslot of each asynchronous round
    /// group. This is the epoch-advance point for dynamic topologies:
    /// protocols over an [`ag_graph::Topology`] advance their view to
    /// epoch `round − 1` here, so round 1 always runs on the initial
    /// graph. The default is a no-op (and a static topology's advance is
    /// itself a no-op), so static protocols pay nothing. Must not touch
    /// any engine-provided RNG — topology schedules carry their own
    /// seeded streams — so the engine's draw sequence is independent of
    /// whether a protocol overrides this. Wrapper protocols must forward
    /// it to their inner protocol.
    fn on_round_start(&mut self, round: u64) {
        let _ = round;
    }

    /// Node `node` wakes up; returns its contact for this wakeup, or
    /// `None` to stay idle. May mutate control state only — message
    /// content must not depend on mutations made here in a way that leaks
    /// intra-round data (the engine cannot check this; protocols in this
    /// workspace uphold it by construction).
    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent>;

    /// Composes the message `from → to` for a contact with the given tag,
    /// reading only committed (pre-round) data state. `None` = nothing to
    /// send in this direction (e.g. an empty RLNC node).
    fn compose(&self, from: NodeId, to: NodeId, tag: u32, rng: &mut StdRng) -> Option<Self::Msg>;

    /// Delivers a previously composed message into `to`'s data state.
    fn deliver(&mut self, from: NodeId, to: NodeId, tag: u32, msg: Self::Msg);

    /// Reclaims a composed message the engine decided **not** to deliver —
    /// same-sender dedup or loss injection. The default just drops it;
    /// protocols that pool their message buffers (e.g. algebraic gossip's
    /// `RowPool`) override this to recycle the allocation, which is what
    /// keeps their round loop allocation-free even on rounds with dropped
    /// messages. Must not mutate any state the simulation can observe:
    /// drop accounting lives in the engine's `RunStats`, and both engines
    /// invoke this hook identically.
    fn discard(&mut self, msg: Self::Msg) {
        drop(msg);
    }

    /// Has this node individually completed its task? Used for per-node
    /// completion-time metrics; the run stops when [`Protocol::is_complete`].
    fn node_complete(&self, node: NodeId) -> bool;

    /// Global termination predicate (default: every node complete).
    fn is_complete(&self) -> bool {
        (0..self.num_nodes()).all(|v| self.node_complete(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_directions() {
        assert!(Action::Push.sends_forward());
        assert!(!Action::Push.sends_backward());
        assert!(!Action::Pull.sends_forward());
        assert!(Action::Pull.sends_backward());
        assert!(Action::Exchange.sends_forward());
        assert!(Action::Exchange.sends_backward());
        assert_eq!(Action::default(), Action::Exchange);
    }

    #[test]
    fn exchange_intent_shape() {
        let i = ContactIntent::exchange(5);
        assert_eq!(i.partner, 5);
        assert_eq!(i.action, Action::Exchange);
        assert_eq!(i.tag, 0);
    }
}
