//! The sharded synchronous round loop: compose and deliver in parallel,
//! merge deterministically.
//!
//! # Determinism contract
//!
//! [`ShardedEngine`] partitions the node set into `num_shards` contiguous
//! shards and runs the two data-parallel phases of a synchronous round —
//! message *composition* (grouped by sender shard) and message *delivery*
//! (grouped by receiver shard) — on rayon workers. Everything that orders
//! the round is a **pure function of `(seed, round, slot)`** and never of
//! scheduling:
//!
//! * Wakeups, loss draws, dedup resolution and the delivery order run
//!   serially on the main engine RNG, exactly like [`crate::Engine`].
//! * Every composition *slot* (slot `2v` = the forward message of node
//!   `v`'s intent, slot `2v + 1` = the backward message) gets its own
//!   `StdRng` seeded `splitmix64(round_key ^ slot · GOLDEN_GAMMA)` with
//!   `round_key = splitmix64(seed ^ round · GOLDEN_GAMMA)`, so a
//!   message's randomness does not depend on which worker composed it, or
//!   on how many workers exist.
//! * The merge replays the slots in ascending order, which is precisely
//!   the serial engine's compose order, so the same-sender dedup rule
//!   picks the same survivor it would pick serially.
//!
//! Consequently the output is **bit-identical across shard counts and
//! thread counts**: `num_shards = 1` is the serial reference, and any
//! `num_shards ≥ 2` under any `RAYON_NUM_THREADS` reproduces it exactly.
//! (The per-slot RNG discipline means the *stream* differs from
//! [`crate::Engine`]'s single interleaved RNG, whose compose draw counts
//! are data-dependent and therefore unparallelizable; protocols that draw
//! no compose/wakeup randomness — like the relay in the tests below —
//! produce identical stats under both engines.)
//!
//! Protocols opt in by implementing [`ShardableProtocol`]: splitting their
//! per-node state into [`ProtocolShard`]s that are `Send` and own disjoint
//! contiguous node ranges. Message buffers flow out of shards through
//! [`ProtocolShard::into_residue`] and back into the protocol through
//! [`Protocol::discard`], so pooled-buffer protocols stay balanced at
//! every round boundary.
//!
//! The asynchronous time model wakes one node per timeslot with immediate
//! delivery — inherently sequential — so [`ShardedEngine`] delegates those
//! runs to the serial [`crate::Engine`] unchanged.

use ag_graph::seedmix::{splitmix64, GOLDEN_GAMMA};
use ag_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::engine::{Engine, EngineConfig, FnObserver, NoObserver, Observe, TimeModel};
use crate::protocol::{ContactIntent, Protocol};
use crate::stats::RunStats;

/// One shard's view of a [`ShardableProtocol`]: exclusive ownership of a
/// contiguous node range, movable to a worker thread.
///
/// All node ids passed to shard methods are **global**; the engine
/// guarantees `from` lies in this shard's range for [`ProtocolShard::compose`]
/// and `to` lies in it for [`ProtocolShard::deliver`].
pub trait ProtocolShard: Send {
    /// Message type, matching the parent protocol's.
    type Msg: Send;

    /// Composes the message `from → to` from pre-round data state.
    /// `rng` is the slot's private RNG — fresh per `(seed, round, slot)`.
    fn compose(
        &mut self,
        from: NodeId,
        to: NodeId,
        tag: u32,
        rng: &mut StdRng,
    ) -> Option<Self::Msg>;

    /// Delivers a message into `to`'s data state. Spent message buffers
    /// that should return to a pool go into the shard's residue.
    fn deliver(&mut self, from: NodeId, to: NodeId, tag: u32, msg: Self::Msg);

    /// Reclaims a message this shard decided not to apply (e.g. a wrapper
    /// suppressing delivery to a crashed node): the message joins the
    /// shard's residue so its buffer still flows back to the protocol.
    /// The engine itself never calls this — undelivered messages on the
    /// main thread go through [`Protocol::discard`] directly.
    fn discard(&mut self, msg: Self::Msg);

    /// Tears the shard down, returning every message buffer it still
    /// holds (unconsumed emit stash, spent delivery buffers). The engine
    /// hands each one back through [`Protocol::discard`] on the main
    /// thread, where pooled protocols recycle it.
    fn into_residue(self) -> Vec<Self::Msg>;
}

/// A [`Protocol`] whose synchronous round can be sharded.
pub trait ShardableProtocol: Protocol<Msg: Send> {
    /// The shard type borrowing from `self`.
    type Shard<'a>: ProtocolShard<Msg = Self::Msg>
    where
        Self: 'a;

    /// Splits the protocol into shards over the given contiguous node
    /// ranges (`bounds[s] = (start, end)`, covering `0..n` in order).
    /// `send_counts[s]` is the number of messages shard `s` will be asked
    /// to compose this phase — pooled protocols pre-draw that many
    /// buffers from their pool into the shard (0 for the delivery phase).
    fn make_shards(
        &mut self,
        bounds: &[(usize, usize)],
        send_counts: &[usize],
    ) -> Vec<Self::Shard<'_>>;
}

/// One routed message: `(from, to, tag, msg)`.
type Delivery<M> = (NodeId, NodeId, u32, M);
/// A compose shard's return: slot-indexed results plus pooled-buffer
/// residue for the serial merge to discard.
type ComposeResult<M> = (Vec<(usize, Option<M>)>, Vec<M>);
/// A delivery shard's return: the drained input list (handed back so its
/// capacity is reused) plus residue.
type DeliverResult<M> = (Vec<Delivery<M>>, Vec<M>);

/// Per-round scratch for the sharded loop, reused across rounds.
struct ShardScratch<M> {
    /// Start-of-round contact intents, one slot per node.
    intents: Vec<Option<ContactIntent>>,
    /// Slot plan: `slots[2v]` = forward of `v`'s intent, `slots[2v+1]` =
    /// backward, as `(from, to, tag)`.
    slots: Vec<Option<(NodeId, NodeId, u32)>>,
    /// Composed messages, indexed by slot.
    composed: Vec<Option<M>>,
    /// Post-merge outbox awaiting loss + delivery partitioning.
    outbox: Vec<Delivery<M>>,
    /// Same-sender dedup state (see [`crate::Engine`]).
    fwd_live: Vec<bool>,
    bwd_live: Vec<bool>,
    /// Per-sender-shard compose worklists (slot indices, ascending).
    worklists: Vec<Vec<usize>>,
    /// Per-receiver-shard delivery lists, in outbox (slot) order.
    delivery: Vec<Vec<Delivery<M>>>,
    /// `node_shard[v]`: the shard owning node `v`.
    node_shard: Vec<usize>,
}

impl<M> ShardScratch<M> {
    fn new(n: usize, bounds: &[(usize, usize)]) -> Self {
        let mut node_shard = vec![0; n];
        for (s, &(start, end)) in bounds.iter().enumerate() {
            for owner in &mut node_shard[start..end] {
                *owner = s;
            }
        }
        ShardScratch {
            intents: Vec::with_capacity(n),
            slots: Vec::with_capacity(2 * n),
            composed: Vec::with_capacity(2 * n),
            outbox: Vec::with_capacity(2 * n),
            fwd_live: vec![false; n],
            bwd_live: vec![false; n],
            worklists: bounds.iter().map(|_| Vec::new()).collect(),
            delivery: bounds.iter().map(|_| Vec::new()).collect(),
            node_shard,
        }
    }
}

/// Drives a [`ShardableProtocol`] with the sharded synchronous round loop.
///
/// Construction mirrors [`Engine`]; `num_shards` picks the partition
/// width (clamped to `[1, n]` at run time). Output is a pure function of
/// the config — see the module docs for the determinism contract.
///
/// # Examples
///
/// ```
/// use ag_sim::{EngineConfig, ShardedEngine};
/// # use ag_sim::{ContactIntent, Protocol, ProtocolShard, ShardableProtocol};
/// # use ag_graph::NodeId;
/// # use rand::rngs::StdRng;
/// # struct Noop;
/// # struct NoopShard;
/// # impl ProtocolShard for NoopShard {
/// #     type Msg = ();
/// #     fn compose(&mut self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> { None }
/// #     fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _: ()) {}
/// #     fn discard(&mut self, _: ()) {}
/// #     fn into_residue(self) -> Vec<()> { Vec::new() }
/// # }
/// # impl Protocol for Noop {
/// #     type Msg = ();
/// #     fn num_nodes(&self) -> usize { 2 }
/// #     fn on_wakeup(&mut self, _: NodeId, _: &mut StdRng) -> Option<ContactIntent> { None }
/// #     fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> { None }
/// #     fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _: ()) {}
/// #     fn node_complete(&self, _: NodeId) -> bool { true }
/// # }
/// # impl ShardableProtocol for Noop {
/// #     type Shard<'a> = NoopShard;
/// #     fn make_shards(&mut self, bounds: &[(usize, usize)], _: &[usize]) -> Vec<NoopShard> {
/// #         bounds.iter().map(|_| NoopShard).collect()
/// #     }
/// # }
/// let stats = ShardedEngine::new(EngineConfig::synchronous(42), 4).run(&mut Noop);
/// assert!(stats.completed);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    config: EngineConfig,
    num_shards: usize,
    rng: StdRng,
}

impl ShardedEngine {
    /// Creates a sharded engine with its own seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    #[must_use]
    pub fn new(config: EngineConfig, num_shards: usize) -> Self {
        assert!(num_shards > 0, "shard count must be positive");
        ShardedEngine {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            num_shards,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The configured shard count (before clamping to the node count).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Runs the protocol to completion or budget; returns statistics.
    pub fn run<P: ShardableProtocol>(&mut self, proto: &mut P) -> RunStats {
        self.run_batch(proto)
    }

    /// The no-trace hot path, mirroring [`Engine::run_batch`].
    pub fn run_batch<P: ShardableProtocol>(&mut self, proto: &mut P) -> RunStats {
        self.run_inner(proto, NoObserver)
    }

    /// Like [`ShardedEngine::run`] but invokes `observer(round, proto)`
    /// after every completed round, mirroring [`Engine::run_observed`].
    pub fn run_observed<P: ShardableProtocol>(
        &mut self,
        proto: &mut P,
        observer: impl FnMut(u64, &P),
    ) -> RunStats {
        self.run_inner(proto, FnObserver(observer))
    }

    fn run_inner<P: ShardableProtocol, O: Observe<P>>(
        &mut self,
        proto: &mut P,
        mut obs: O,
    ) -> RunStats {
        if self.config.time_model == TimeModel::Asynchronous {
            // One wakeup per timeslot with immediate delivery is
            // inherently sequential: delegate to the serial engine
            // (bit-identical to running it directly).
            return Engine::new(self.config).run_inner(proto, obs);
        }
        let n = proto.num_nodes();
        assert!(n > 0, "protocol must have at least one node");
        let mut stats = RunStats::new(n);
        let mut incomplete = n;
        for v in 0..n {
            if proto.node_complete(v) {
                stats.node_completion_rounds[v] = Some(0);
                incomplete -= 1;
            }
        }
        if incomplete == 0 {
            stats.completed = true;
            return stats;
        }
        let mut pending: Vec<NodeId> = (0..n)
            .filter(|&v| stats.node_completion_rounds[v].is_none())
            .collect();
        let shards = self.num_shards.min(n);
        let bounds: Vec<(usize, usize)> = (0..shards)
            .map(|s| (s * n / shards, (s + 1) * n / shards))
            .collect();
        let mut scratch = ShardScratch::new(n, &bounds);
        while stats.rounds < self.config.max_rounds {
            self.sync_round(proto, &mut stats, &mut scratch, &mut pending, &bounds);
            if O::ENABLED {
                obs.observe(stats.rounds, proto);
            }
            if pending.is_empty() {
                stats.completed = true;
                break;
            }
        }
        stats
    }

    /// One sharded synchronous round. Semantically identical to
    /// [`Engine`]'s round (wakeups → compose from pre-round state →
    /// dedup/loss → deliver), with compose and deliver fanned out across
    /// shards and merged back in slot order.
    fn sync_round<P: ShardableProtocol>(
        &mut self,
        proto: &mut P,
        stats: &mut RunStats,
        scratch: &mut ShardScratch<P::Msg>,
        pending: &mut Vec<NodeId>,
        bounds: &[(usize, usize)],
    ) {
        let n = proto.num_nodes();
        let round = stats.rounds + 1;
        let ShardScratch {
            intents,
            slots,
            composed,
            outbox,
            fwd_live,
            bwd_live,
            worklists,
            delivery,
            node_shard,
        } = scratch;
        // 0. Round-start hook (epoch advance for dynamic topologies).
        proto.on_round_start(round);
        // 1. Every node wakes and declares its contact — serial, on the
        //    main engine RNG, in node order (the wakeup stream must not
        //    depend on sharding).
        intents.clear();
        intents.extend((0..n).map(|v| proto.on_wakeup(v, &mut self.rng)));
        // 2. Slot plan: slot 2v is the forward message of v's intent,
        //    slot 2v+1 the backward one. Ascending slot order is exactly
        //    the serial engine's compose order.
        slots.clear();
        slots.resize(2 * n, None);
        for (v, intent) in intents.iter().enumerate() {
            let Some(intent) = intent else { continue };
            let u = intent.partner;
            debug_assert_ne!(u, v, "self-contact");
            if intent.action.sends_forward() {
                slots[2 * v] = Some((v, u, intent.tag));
            }
            if intent.action.sends_backward() {
                slots[2 * v + 1] = Some((u, v, intent.tag));
            }
        }
        // 3. Group slots into per-sender-shard worklists (ascending
        //    within each shard).
        for wl in worklists.iter_mut() {
            wl.clear();
        }
        for (slot, plan) in slots.iter().enumerate() {
            if let Some((from, _, _)) = plan {
                worklists[node_shard[*from]].push(slot);
            }
        }
        let send_counts: Vec<usize> = worklists.iter().map(Vec::len).collect();
        // 4. Parallel compose: each shard walks its worklist; every slot
        //    draws from its own (seed, round, slot)-keyed RNG, so the
        //    message content is independent of scheduling.
        // ag-lint: sharded-phase(begin) — only per-slot-keyed RNGs below
        let round_key = splitmix64(self.config.seed ^ round.wrapping_mul(GOLDEN_GAMMA));
        let plan: &[Option<(NodeId, NodeId, u32)>] = slots;
        let jobs: Vec<(P::Shard<'_>, &[usize])> = proto
            .make_shards(bounds, &send_counts)
            .into_iter()
            .zip(worklists.iter().map(Vec::as_slice))
            .collect();
        let results: Vec<ComposeResult<P::Msg>> = jobs
            .into_par_iter()
            .map(|(mut shard, worklist)| {
                let mut out = Vec::with_capacity(worklist.len());
                for &slot in worklist {
                    let (from, to, tag) = plan[slot].expect("worklist slots are planned");
                    let mut slot_rng = StdRng::seed_from_u64(splitmix64(
                        round_key ^ (slot as u64).wrapping_mul(GOLDEN_GAMMA),
                    ));
                    out.push((slot, shard.compose(from, to, tag, &mut slot_rng)));
                }
                (out, shard.into_residue())
            })
            .collect();
        // ag-lint: sharded-phase(end)
        composed.clear();
        composed.resize_with(2 * n, || None);
        for (outs, residue) in results {
            for (slot, msg) in outs {
                composed[slot] = msg;
            }
            for msg in residue {
                proto.discard(msg);
            }
        }
        // 5. Merge in slot order, replicating the serial engine's
        //    same-sender dedup exactly (see Engine::sync_round: a pair
        //    (from, to) occurs at most twice, and "keep the first" is two
        //    O(1) intent-table lookups).
        let dedup = self.config.dedup_same_sender;
        if dedup {
            fwd_live.iter_mut().for_each(|b| *b = false);
            bwd_live.iter_mut().for_each(|b| *b = false);
        }
        for v in 0..n {
            let Some(intent) = intents[v] else { continue };
            let u = intent.partner;
            if intent.action.sends_forward() {
                match composed[2 * v].take() {
                    Some(m) => {
                        let dup = dedup
                            && u < v
                            && bwd_live[u]
                            && matches!(intents[u], Some(i) if i.partner == v);
                        if dup {
                            stats.dedup_dropped += 1;
                            proto.discard(m);
                        } else {
                            if dedup {
                                fwd_live[v] = true;
                            }
                            outbox.push((v, u, intent.tag, m));
                        }
                    }
                    None => stats.empty_sends += 1,
                }
            }
            if intent.action.sends_backward() {
                match composed[2 * v + 1].take() {
                    Some(m) => {
                        let dup = dedup
                            && u < v
                            && fwd_live[u]
                            && matches!(intents[u], Some(i) if i.partner == v);
                        if dup {
                            stats.dedup_dropped += 1;
                            proto.discard(m);
                        } else {
                            if dedup {
                                bwd_live[v] = true;
                            }
                            outbox.push((u, v, intent.tag, m));
                        }
                    }
                    None => stats.empty_sends += 1,
                }
            }
        }
        // 6. Loss injection on the main RNG in outbox (slot) order, then
        //    partition survivors by receiver shard.
        let lossy = self.config.loss_prob > 0.0;
        for dl in delivery.iter_mut() {
            dl.clear();
        }
        for (from, to, tag, msg) in outbox.drain(..) {
            if lossy && self.rng.gen_bool(self.config.loss_prob) {
                stats.lost += 1;
                proto.discard(msg);
                continue;
            }
            stats.messages_delivered += 1;
            delivery[node_shard[to]].push((from, to, tag, msg));
        }
        // 7. Parallel delivery, each shard in its list's (slot) order.
        let zero_counts = vec![0usize; bounds.len()];
        let jobs: Vec<_> = proto
            .make_shards(bounds, &zero_counts)
            .into_iter()
            .zip(delivery.iter_mut().map(std::mem::take))
            .collect();
        let results: Vec<DeliverResult<P::Msg>> = jobs
            .into_par_iter()
            .map(|(mut shard, mut list)| {
                for (from, to, tag, msg) in list.drain(..) {
                    shard.deliver(from, to, tag, msg);
                }
                (list, shard.into_residue())
            })
            .collect();
        for (s, (list, residue)) in results.into_iter().enumerate() {
            // Hand the (drained) list back so its capacity is reused.
            delivery[s] = list;
            for msg in residue {
                proto.discard(msg);
            }
        }
        stats.rounds += 1;
        stats.timeslots += n as u64;
        // 8. Completion sweep over the still-incomplete nodes only.
        let round = stats.rounds;
        pending.retain(|&v| {
            if proto.node_complete(v) {
                stats.node_completion_rounds[v] = Some(round);
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Action;

    /// The engine tests' relay ring, made shardable: node v pushes its
    /// value to v+1 mod n, receivers take the max. Draws no randomness,
    /// so sharded stats must be bit-identical to the serial [`Engine`].
    struct Relay {
        values: Vec<u8>,
    }

    impl Relay {
        fn new(n: usize) -> Self {
            let mut values = vec![0; n];
            values[0] = 1;
            Relay { values }
        }
    }

    impl Protocol for Relay {
        type Msg = u8;

        fn num_nodes(&self) -> usize {
            self.values.len()
        }

        fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
            Some(ContactIntent {
                partner: (node + 1) % self.values.len(),
                action: Action::Push,
                tag: 0,
            })
        }

        fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, _rng: &mut StdRng) -> Option<u8> {
            Some(self.values[from])
        }

        fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: u8) {
            self.values[to] = self.values[to].max(msg);
        }

        fn node_complete(&self, node: NodeId) -> bool {
            self.values[node] == 1
        }
    }

    struct RelayShard<'a> {
        values: &'a mut [u8],
        start: usize,
    }

    impl ProtocolShard for RelayShard<'_> {
        type Msg = u8;

        fn compose(
            &mut self,
            from: NodeId,
            _to: NodeId,
            _tag: u32,
            _rng: &mut StdRng,
        ) -> Option<u8> {
            Some(self.values[from - self.start])
        }

        fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: u8) {
            let v = &mut self.values[to - self.start];
            *v = (*v).max(msg);
        }

        fn discard(&mut self, _msg: u8) {}

        fn into_residue(self) -> Vec<u8> {
            Vec::new()
        }
    }

    impl ShardableProtocol for Relay {
        type Shard<'a> = RelayShard<'a>;

        fn make_shards(
            &mut self,
            bounds: &[(usize, usize)],
            _send_counts: &[usize],
        ) -> Vec<RelayShard<'_>> {
            let mut rest: &mut [u8] = &mut self.values;
            let mut taken = 0;
            let mut shards = Vec::with_capacity(bounds.len());
            for &(start, end) in bounds {
                assert_eq!(start, taken, "bounds must be contiguous");
                let (head, tail) = rest.split_at_mut(end - start);
                shards.push(RelayShard {
                    values: head,
                    start,
                });
                rest = tail;
                taken = end;
            }
            shards
        }
    }

    /// A randomized exchange protocol exercising every seam the merge has
    /// to keep deterministic: random partners (wakeup RNG), random
    /// message content (compose RNG), EXCHANGE contacts (dedup pairs),
    /// and pooled-style residue accounting via an emit budget.
    struct NoisyExchange {
        values: Vec<u64>,
        /// Compose returns None once a node's value exceeds this (so the
        /// empty-send path and residue path both run).
        saturation: u64,
    }

    impl NoisyExchange {
        fn new(n: usize) -> Self {
            NoisyExchange {
                values: (0..n as u64).collect(),
                saturation: u64::MAX,
            }
        }

        fn target(&self) -> u64 {
            // Sum high-water mark every node must reach.
            1_000
        }
    }

    impl Protocol for NoisyExchange {
        type Msg = u64;

        fn num_nodes(&self) -> usize {
            self.values.len()
        }

        fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
            let n = self.values.len();
            let offset = rng.gen_range(1..n);
            Some(ContactIntent {
                partner: (node + offset) % n,
                action: Action::Exchange,
                tag: 0,
            })
        }

        fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, rng: &mut StdRng) -> Option<u64> {
            if self.values[from] > self.saturation {
                return None;
            }
            Some(self.values[from].wrapping_add(rng.gen_range(0..64)))
        }

        fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: u64) {
            self.values[to] = self.values[to].max(msg).wrapping_add(1);
        }

        fn node_complete(&self, node: NodeId) -> bool {
            self.values[node] >= self.target()
        }
    }

    struct NoisyShard<'a> {
        values: &'a mut [u64],
        start: usize,
        saturation: u64,
    }

    impl ProtocolShard for NoisyShard<'_> {
        type Msg = u64;

        fn compose(
            &mut self,
            from: NodeId,
            _to: NodeId,
            _tag: u32,
            rng: &mut StdRng,
        ) -> Option<u64> {
            let v = self.values[from - self.start];
            if v > self.saturation {
                return None;
            }
            Some(v.wrapping_add(rng.gen_range(0..64)))
        }

        fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: u64) {
            let v = &mut self.values[to - self.start];
            *v = (*v).max(msg).wrapping_add(1);
        }

        fn discard(&mut self, _msg: u64) {}

        fn into_residue(self) -> Vec<u64> {
            Vec::new()
        }
    }

    impl ShardableProtocol for NoisyExchange {
        type Shard<'a> = NoisyShard<'a>;

        fn make_shards(
            &mut self,
            bounds: &[(usize, usize)],
            _send_counts: &[usize],
        ) -> Vec<NoisyShard<'_>> {
            let saturation = self.saturation;
            let mut rest: &mut [u64] = &mut self.values;
            let mut taken = 0;
            let mut shards = Vec::with_capacity(bounds.len());
            for &(start, end) in bounds {
                assert_eq!(start, taken, "bounds must be contiguous");
                let (head, tail) = rest.split_at_mut(end - start);
                shards.push(NoisyShard {
                    values: head,
                    start,
                    saturation,
                });
                rest = tail;
                taken = end;
            }
            shards
        }
    }

    #[test]
    fn rng_free_protocol_matches_serial_engine_exactly() {
        // Relay draws no wakeup/compose randomness, so the sharded
        // engine's per-slot RNG discipline is invisible: stats must be
        // bit-identical to the serial Engine, at every shard count.
        for shards in [1, 2, 3, 6, 9] {
            let mut serial = Relay::new(6);
            let want = Engine::new(EngineConfig::synchronous(1)).run(&mut serial);
            let mut proto = Relay::new(6);
            let got = ShardedEngine::new(EngineConfig::synchronous(1), shards).run(&mut proto);
            assert_eq!(got, want, "shards = {shards}");
            assert_eq!(proto.values, serial.values);
        }
    }

    #[test]
    fn shard_count_never_changes_the_run() {
        // Random partners + random payload contents + exchange dedup +
        // loss: the full merge surface. Every shard count reproduces the
        // 1-shard (serial reference) run bit-for-bit.
        let run = |shards: usize| {
            let cfg = EngineConfig::synchronous(0xD15EA5E)
                .with_loss(0.1)
                .with_max_rounds(400);
            let mut proto = NoisyExchange::new(23);
            let stats = ShardedEngine::new(cfg, shards).run(&mut proto);
            (stats, proto.values)
        };
        let (want_stats, want_values) = run(1);
        assert!(want_stats.completed);
        assert!(want_stats.dedup_dropped > 0, "dedup must be exercised");
        assert!(want_stats.lost > 0, "loss must be exercised");
        for shards in [2, 3, 7, 23, 64] {
            let (stats, values) = run(shards);
            assert_eq!(stats, want_stats, "shards = {shards}");
            assert_eq!(values, want_values, "shards = {shards}");
        }
    }

    #[test]
    fn observed_traces_match_across_shard_counts() {
        let trace = |shards: usize| {
            let cfg = EngineConfig::synchronous(7).with_max_rounds(300);
            let mut proto = NoisyExchange::new(11);
            let mut rounds = Vec::new();
            let stats = ShardedEngine::new(cfg, shards).run_observed(&mut proto, |round, p| {
                rounds.push((round, p.values.iter().sum::<u64>()));
            });
            (stats, rounds)
        };
        let want = trace(1);
        assert!(want.0.completed);
        for shards in [2, 5] {
            assert_eq!(trace(shards), want, "shards = {shards}");
        }
    }

    #[test]
    fn empty_sends_are_counted_once_per_silent_direction() {
        // Saturated nodes stop composing; the sharded engine must count
        // those the way the serial merge would.
        let run = |shards: usize| {
            let cfg = EngineConfig::synchronous(3).with_max_rounds(50);
            let mut proto = NoisyExchange::new(9);
            proto.saturation = 40;
            let stats = ShardedEngine::new(cfg, shards).run(&mut proto);
            (stats, proto.values)
        };
        let want = run(1);
        assert!(
            want.0.empty_sends > 0,
            "saturation must trigger empty sends"
        );
        for shards in [2, 4] {
            assert_eq!(run(shards), want, "shards = {shards}");
        }
    }

    #[test]
    fn async_model_delegates_to_serial_engine() {
        let cfg = EngineConfig::asynchronous(5);
        let mut serial = Relay::new(8);
        let want = Engine::new(cfg).run(&mut serial);
        let mut proto = Relay::new(8);
        let got = ShardedEngine::new(cfg, 4).run(&mut proto);
        assert_eq!(got, want);
        assert_eq!(proto.values, serial.values);
    }

    #[test]
    fn run_batch_and_run_observed_agree() {
        let cfg = EngineConfig::synchronous(5).with_max_rounds(200);
        let batch = ShardedEngine::new(cfg, 3).run_batch(&mut NoisyExchange::new(10));
        let observed =
            ShardedEngine::new(cfg, 3).run_observed(&mut NoisyExchange::new(10), |_, _| {});
        assert_eq!(batch, observed);
    }

    #[test]
    fn already_complete_protocol_runs_zero_rounds() {
        let mut proto = Relay::new(1);
        let stats = ShardedEngine::new(EngineConfig::synchronous(0), 4).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(EngineConfig::synchronous(0), 0);
    }
}
