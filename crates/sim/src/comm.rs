//! Partner selection: the paper's gossip communication models.

use ag_graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;

/// Which communication model a protocol uses to pick partners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommModel {
    /// Definition 1 (Uniform Gossip): "a communication partner is chosen
    /// randomly and uniformly among all the neighbors."
    #[default]
    Uniform,
    /// Definition 2 (Round-Robin Gossip): "the communication partner is
    /// chosen according to a fixed, cyclic list of the node's neighbors
    /// … If the initial partner is chosen at random, this … is known as
    /// the quasirandom rumor spreading model."
    RoundRobin,
}

/// Stateful partner selector for every node of a topology.
///
/// For [`CommModel::RoundRobin`] each node keeps an **absolute** contact
/// counter, reduced modulo the node's *current* degree at each pick; the
/// initial counter is random, per the quasirandom model. Storing the
/// counter unreduced (instead of pre-reduced modulo the degree at pick
/// time, as an earlier version did) is what makes the selector correct
/// over a dynamic [`Topology`]: when churn changes a node's degree the
/// cycle simply continues at `counter mod new_degree`, whereas a
/// pre-reduced cursor silently remapped which neighbor came next and
/// could skip or repeat neighbors. At fixed degree the two laws are
/// identical (`counter ≡ cursor (mod d)` is preserved by `+1`), so
/// static-topology behavior is bit-for-bit unchanged — pinned by
/// `static_round_robin_sequences_are_unchanged` below.
///
/// For [`CommModel::Uniform`] each call samples fresh from the current
/// neighbor view.
///
/// # Examples
///
/// ```
/// use ag_graph::builders;
/// use ag_sim::{CommModel, PartnerSelector};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let g = builders::cycle(5).unwrap();
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut sel = PartnerSelector::new(&g, CommModel::RoundRobin, &mut rng);
/// // Two consecutive picks by the same node hit both neighbors.
/// let a = sel.next_partner(&g, 0, &mut rng).unwrap();
/// let b = sel.next_partner(&g, 0, &mut rng).unwrap();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct PartnerSelector {
    model: CommModel,
    /// Absolute round-robin contact counter per node (unused for
    /// Uniform); reduced modulo the current degree at each pick.
    cursor: Vec<u64>,
}

impl PartnerSelector {
    /// Creates a selector; round-robin counters start at random offsets
    /// within the node's initial degree.
    #[must_use]
    pub fn new<T: Topology + ?Sized>(topology: &T, model: CommModel, rng: &mut StdRng) -> Self {
        let cursor = (0..topology.n())
            .map(|v| {
                let d = topology.degree(v);
                if d == 0 {
                    0
                } else {
                    rng.gen_range(0..d) as u64
                }
            })
            .collect();
        PartnerSelector { model, cursor }
    }

    /// The configured model.
    #[must_use]
    pub fn model(&self) -> CommModel {
        self.model
    }

    /// Picks the next partner for `v` under `topology`'s current view, or
    /// `None` if `v` currently has no neighbors (a round-robin node's
    /// counter does not advance on such an idle wakeup).
    pub fn next_partner<T: Topology + ?Sized>(
        &mut self,
        topology: &T,
        v: NodeId,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let d = topology.degree(v);
        if d == 0 {
            return None;
        }
        match self.model {
            CommModel::Uniform => Some(topology.neighbor_at(v, rng.gen_range(0..d))),
            CommModel::RoundRobin => {
                let idx = (self.cursor[v] % d as u64) as usize;
                self.cursor[v] = self.cursor[v].wrapping_add(1);
                Some(topology.neighbor_at(v, idx))
            }
        }
    }
}

// Test-only duplicate probes: insert/contains, order never observed.
#[allow(clippy::disallowed_types)]
#[cfg(test)]
mod tests {
    use super::*;
    use ag_graph::{builders, ChurnSchedule, ScheduledTopology};
    use rand::SeedableRng;

    #[test]
    fn round_robin_cycles_all_neighbors() {
        let g = builders::star(6).unwrap(); // hub 0 with 5 leaves
        let mut rng = StdRng::seed_from_u64(1);
        let mut sel = PartnerSelector::new(&g, CommModel::RoundRobin, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            seen.insert(sel.next_partner(&g, 0, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 5, "one full cycle visits every neighbor once");
        // Second cycle repeats the same fixed order.
        let first_again = sel.next_partner(&g, 0, &mut rng).unwrap();
        let mut sel2 = sel.clone();
        for _ in 0..4 {
            sel2.next_partner(&g, 0, &mut rng).unwrap();
        }
        assert_eq!(sel2.next_partner(&g, 0, &mut rng).unwrap(), first_again);
    }

    /// Pins the exact pick sequences the pre-fix (modulo-stored cursor)
    /// implementation produced on static graphs: the absolute-counter fix
    /// must be invisible whenever degrees never change. The literals were
    /// generated by the original implementation.
    #[test]
    fn static_round_robin_sequences_are_unchanged() {
        let g = builders::star(6).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut sel = PartnerSelector::new(&g, CommModel::RoundRobin, &mut rng);
        let seq: Vec<_> = (0..12)
            .map(|_| sel.next_partner(&g, 0, &mut rng).unwrap())
            .collect();
        assert_eq!(seq, vec![3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4]);

        let g2 = builders::grid(3, 3).unwrap();
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut sel2 = PartnerSelector::new(&g2, CommModel::RoundRobin, &mut rng2);
        let expected: [(usize, [usize; 8]); 3] = [
            (0, [3, 1, 3, 1, 3, 1, 3, 1]),
            (4, [5, 7, 1, 3, 5, 7, 1, 3]),
            (8, [7, 5, 7, 5, 7, 5, 7, 5]),
        ];
        for (v, want) in expected {
            let seq: Vec<_> = (0..8)
                .map(|_| sel2.next_partner(&g2, v, &mut rng2).unwrap())
                .collect();
            assert_eq!(seq, want, "node {v}");
        }
    }

    /// Regression for the cursor-aliasing bug: the pre-fix selector stored
    /// the cursor reduced modulo the *current* degree, so a degree change
    /// silently remapped which neighbor came next. The absolute counter
    /// must follow the law `pick_t = neighbor_at(v, (c0 + t) mod d_t)`
    /// across arbitrary degree changes.
    #[test]
    fn round_robin_counter_survives_degree_changes() {
        // Same node 0 at degree 5 (star) and degree 2 (cycle view of the
        // same node count).
        let wide = builders::star(6).unwrap();
        let narrow = builders::cycle(6).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut sel = PartnerSelector::new(&wide, CommModel::RoundRobin, &mut rng);
        // Learn the initial counter from the first pick at degree 5.
        let first = sel.next_partner(&wide, 0, &mut rng).unwrap();
        let c0 = (0..5)
            .find(|&i| ag_graph::Topology::neighbor_at(&wide, 0, i) == first)
            .unwrap() as u64;
        // Alternate views; every pick must follow the absolute law.
        let views: [(&ag_graph::Graph, u64); 6] = [
            (&narrow, 2),
            (&wide, 5),
            (&narrow, 2),
            (&narrow, 2),
            (&wide, 5),
            (&narrow, 2),
        ];
        for (t, (view, d)) in views.iter().enumerate() {
            let got = sel.next_partner(*view, 0, &mut rng).unwrap();
            let want_idx = ((c0 + 1 + t as u64) % d) as usize;
            assert_eq!(
                got,
                ag_graph::Topology::neighbor_at(*view, 0, want_idx),
                "pick {t} at degree {d}"
            );
        }
    }

    /// End-to-end dynamic sanity: picks under a churning topology are
    /// always current-epoch neighbors, and a degree-0 epoch yields `None`
    /// without advancing the counter.
    #[test]
    fn round_robin_over_scheduled_topology_stays_valid() {
        let g = builders::cycle(8).unwrap();
        let mut topo = ScheduledTopology::new(&g, ChurnSchedule::rewire(0.5, 4));
        let mut rng = StdRng::seed_from_u64(9);
        let mut sel = PartnerSelector::new(&topo, CommModel::RoundRobin, &mut rng);
        for epoch in 0..30 {
            topo.advance_to_epoch(epoch);
            for v in 0..topo.n() {
                match sel.next_partner(&topo, v, &mut rng) {
                    Some(u) => assert!(topo.has_edge(v, u), "epoch {epoch}: {v} picked {u}"),
                    None => assert_eq!(topo.degree(v), 0),
                }
            }
        }
    }

    #[test]
    fn uniform_covers_all_neighbors_eventually() {
        let g = builders::complete(8).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut sel = PartnerSelector::new(&g, CommModel::Uniform, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(sel.next_partner(&g, 3, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 7);
        assert!(!seen.contains(&3), "never selects itself");
    }

    #[test]
    fn isolated_node_has_no_partner() {
        let g = ag_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sel = PartnerSelector::new(&g, CommModel::Uniform, &mut rng);
        assert_eq!(sel.next_partner(&g, 2, &mut rng), None);
    }

    #[test]
    fn partners_are_always_neighbors() {
        let g = builders::grid(3, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for model in [CommModel::Uniform, CommModel::RoundRobin] {
            let mut sel = PartnerSelector::new(&g, model, &mut rng);
            for v in 0..g.n() {
                for _ in 0..10 {
                    let u = sel.next_partner(&g, v, &mut rng).unwrap();
                    assert!(g.has_edge(v, u), "{model:?} picked non-neighbor");
                }
            }
        }
    }

    #[test]
    fn random_initial_cursor_varies_across_nodes() {
        // With 16 nodes of degree 15, at least two cursors should differ.
        let g = builders::complete(16).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let sel = PartnerSelector::new(&g, CommModel::RoundRobin, &mut rng);
        let all_same = sel.cursor.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same);
    }
}
