//! Partner selection: the paper's gossip communication models.

use ag_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

/// Which communication model a protocol uses to pick partners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommModel {
    /// Definition 1 (Uniform Gossip): "a communication partner is chosen
    /// randomly and uniformly among all the neighbors."
    #[default]
    Uniform,
    /// Definition 2 (Round-Robin Gossip): "the communication partner is
    /// chosen according to a fixed, cyclic list of the node's neighbors
    /// … If the initial partner is chosen at random, this … is known as
    /// the quasirandom rumor spreading model."
    RoundRobin,
}

/// Stateful partner selector for every node of a graph.
///
/// For [`CommModel::RoundRobin`] each node keeps a cyclic pointer into its
/// (sorted, fixed) neighbor list; the initial pointer is random, per the
/// quasirandom model. For [`CommModel::Uniform`] each call samples fresh.
///
/// # Examples
///
/// ```
/// use ag_graph::builders;
/// use ag_sim::{CommModel, PartnerSelector};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let g = builders::cycle(5).unwrap();
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut sel = PartnerSelector::new(&g, CommModel::RoundRobin, &mut rng);
/// // Two consecutive picks by the same node hit both neighbors.
/// let a = sel.next_partner(&g, 0, &mut rng).unwrap();
/// let b = sel.next_partner(&g, 0, &mut rng).unwrap();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct PartnerSelector {
    model: CommModel,
    /// Round-robin cursor per node (unused for Uniform).
    cursor: Vec<usize>,
}

impl PartnerSelector {
    /// Creates a selector; round-robin cursors start at random offsets.
    #[must_use]
    pub fn new(graph: &Graph, model: CommModel, rng: &mut StdRng) -> Self {
        let cursor = (0..graph.n())
            .map(|v| {
                let d = graph.degree(v);
                if d == 0 {
                    0
                } else {
                    rng.gen_range(0..d)
                }
            })
            .collect();
        PartnerSelector { model, cursor }
    }

    /// The configured model.
    #[must_use]
    pub fn model(&self) -> CommModel {
        self.model
    }

    /// Picks the next partner for `v`, or `None` if `v` has no neighbors.
    pub fn next_partner(&mut self, graph: &Graph, v: NodeId, rng: &mut StdRng) -> Option<NodeId> {
        let d = graph.degree(v);
        if d == 0 {
            return None;
        }
        match self.model {
            CommModel::Uniform => Some(graph.neighbor_at(v, rng.gen_range(0..d))),
            CommModel::RoundRobin => {
                let idx = self.cursor[v] % d;
                self.cursor[v] = (idx + 1) % d;
                Some(graph.neighbor_at(v, idx))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_graph::builders;
    use rand::SeedableRng;

    #[test]
    fn round_robin_cycles_all_neighbors() {
        let g = builders::star(6).unwrap(); // hub 0 with 5 leaves
        let mut rng = StdRng::seed_from_u64(1);
        let mut sel = PartnerSelector::new(&g, CommModel::RoundRobin, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            seen.insert(sel.next_partner(&g, 0, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 5, "one full cycle visits every neighbor once");
        // Second cycle repeats the same fixed order.
        let first_again = sel.next_partner(&g, 0, &mut rng).unwrap();
        let mut sel2 = sel.clone();
        for _ in 0..4 {
            sel2.next_partner(&g, 0, &mut rng).unwrap();
        }
        assert_eq!(sel2.next_partner(&g, 0, &mut rng).unwrap(), first_again);
    }

    #[test]
    fn uniform_covers_all_neighbors_eventually() {
        let g = builders::complete(8).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut sel = PartnerSelector::new(&g, CommModel::Uniform, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(sel.next_partner(&g, 3, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 7);
        assert!(!seen.contains(&3), "never selects itself");
    }

    #[test]
    fn isolated_node_has_no_partner() {
        let g = ag_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sel = PartnerSelector::new(&g, CommModel::Uniform, &mut rng);
        assert_eq!(sel.next_partner(&g, 2, &mut rng), None);
    }

    #[test]
    fn partners_are_always_neighbors() {
        let g = builders::grid(3, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for model in [CommModel::Uniform, CommModel::RoundRobin] {
            let mut sel = PartnerSelector::new(&g, model, &mut rng);
            for v in 0..g.n() {
                for _ in 0..10 {
                    let u = sel.next_partner(&g, v, &mut rng).unwrap();
                    assert!(g.has_edge(v, u), "{model:?} picked non-neighbor");
                }
            }
        }
    }

    #[test]
    fn random_initial_cursor_varies_across_nodes() {
        // With 16 nodes of degree 15, at least two cursors should differ.
        let g = builders::complete(16).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let sel = PartnerSelector::new(&g, CommModel::RoundRobin, &mut rng);
        let all_same = sel.cursor.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same);
    }
}
