//! The simulation engine: drives a [`Protocol`] under either time model.
//!
//! The round loop is built for large `n`: all per-round scratch (wakeup
//! intents, the outbox, dedup state) lives in buffers reused across rounds,
//! same-sender deduplication is resolved analytically from the intent table
//! instead of hashing `(from, to)` pairs, and the completion sweep walks an
//! explicit list of still-incomplete nodes rather than all `n` flags.
//! Messages the engine decides not to deliver (dedup, loss) are handed back
//! through [`Protocol::discard`], so protocols that pool their message
//! buffers (algebraic gossip's `RowPool`) stay allocation-free even on
//! rounds with drops. The pre-refactor loop is preserved verbatim in
//! [`crate::reference`] so differential tests and the `bench_engine_scale`
//! binary can prove the fast loop computes bit-identical results, faster.

use ag_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{ContactIntent, Protocol};
use crate::stats::RunStats;

/// The paper's two time models (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimeModel {
    /// Every node wakes once per round; messages composed from start-of-
    /// round state, delivered at the round boundary.
    #[default]
    Synchronous,
    /// One uniformly random node wakes per timeslot; delivery is
    /// immediate. `n` timeslots = 1 round.
    Asynchronous,
}

/// Engine configuration.
///
/// `loss_prob` and `dedup_same_sender` go beyond the paper: loss is a
/// robustness ablation (the paper assumes reliable channels), and dedup
/// implements the paper's synchronous-model simplifying assumption ("if a
/// node receives 2 messages from the same node at the same round, it will
/// discard the second") — on by default, toggleable for the ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Synchronous rounds or asynchronous timeslots grouping.
    pub time_model: TimeModel,
    /// Stop (unfinished) after this many rounds.
    pub max_rounds: u64,
    /// Per-message drop probability in `[0, 1]`.
    pub loss_prob: f64,
    /// Keep only the first message per (sender, receiver) pair within a
    /// synchronous round.
    pub dedup_same_sender: bool,
    /// RNG seed: equal seeds give bit-identical runs.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            time_model: TimeModel::Synchronous,
            max_rounds: 1_000_000,
            loss_prob: 0.0,
            dedup_same_sender: true,
            seed: 0,
        }
    }
}

impl EngineConfig {
    /// Synchronous config with a seed.
    #[must_use]
    pub fn synchronous(seed: u64) -> Self {
        EngineConfig {
            time_model: TimeModel::Synchronous,
            seed,
            ..EngineConfig::default()
        }
    }

    /// Asynchronous config with a seed.
    #[must_use]
    pub fn asynchronous(seed: u64) -> Self {
        EngineConfig {
            time_model: TimeModel::Asynchronous,
            seed,
            ..EngineConfig::default()
        }
    }

    /// Sets the round budget (builder-style).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the loss probability (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.loss_prob = p;
        self
    }

    /// Enables/disables synchronous same-sender dedup (builder-style).
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup_same_sender = dedup;
        self
    }
}

/// Per-round observation hook, monomorphized so the no-observer path
/// compiles to nothing (no closure call, no round bookkeeping between
/// asynchronous round boundaries). Shared with [`crate::ShardedEngine`].
pub(crate) trait Observe<P: Protocol> {
    /// Whether observations are wanted at all. `false` lets the loop skip
    /// observation-only work entirely.
    const ENABLED: bool;
    fn observe(&mut self, round: u64, proto: &P);
}

/// The [`Engine::run_batch`] hot path: observations statically disabled.
pub(crate) struct NoObserver;

impl<P: Protocol> Observe<P> for NoObserver {
    const ENABLED: bool = false;
    #[inline]
    fn observe(&mut self, _round: u64, _proto: &P) {}
}

/// Adapter for the `run_observed` closure.
pub(crate) struct FnObserver<F>(pub(crate) F);

impl<P: Protocol, F: FnMut(u64, &P)> Observe<P> for FnObserver<F> {
    const ENABLED: bool = true;
    #[inline]
    fn observe(&mut self, round: u64, proto: &P) {
        (self.0)(round, proto);
    }
}

/// Reusable synchronous-round scratch: allocated once per run, reused by
/// every round, so the steady-state loop performs no engine-side heap
/// allocation (messages themselves are owned by the protocol).
struct SyncScratch<M> {
    /// Start-of-round contact intents, one slot per node.
    intents: Vec<Option<ContactIntent>>,
    /// Composed messages awaiting loss + delivery.
    outbox: Vec<(NodeId, NodeId, u32, M)>,
    /// `fwd_live[v]`: v's intent put its forward message into the outbox.
    fwd_live: Vec<bool>,
    /// `bwd_live[w]`: w's intent put its backward message into the outbox.
    bwd_live: Vec<bool>,
}

impl<M> SyncScratch<M> {
    fn new(n: usize) -> Self {
        SyncScratch {
            intents: Vec::with_capacity(n),
            outbox: Vec::with_capacity(2 * n),
            fwd_live: vec![false; n],
            bwd_live: vec![false; n],
        }
    }
}

/// Drives a [`Protocol`] to completion (or budget exhaustion).
///
/// The engine assumes node completion is *monotone* (once
/// [`Protocol::node_complete`] returns true for a node it stays true) —
/// which holds for every protocol in this workspace since decoder ranks and
/// heard-sets only grow. Completion is re-checked once per still-incomplete
/// node per synchronous round (every node wakes each round, so the set of
/// nodes whose status may have changed — the "dirty" set — is exactly the
/// incomplete set), and per contact participant per asynchronous slot (the
/// two contact participants are the only dirty nodes of a slot: a node's
/// status can change on receipt *or* on its own wakeup, e.g. under an
/// oracle tree protocol).
///
/// # Examples
///
/// ```
/// use ag_sim::{Engine, EngineConfig};
/// # use ag_sim::{ContactIntent, Protocol};
/// # use ag_graph::NodeId;
/// # use rand::rngs::StdRng;
/// # struct Noop;
/// # impl Protocol for Noop {
/// #     type Msg = ();
/// #     fn num_nodes(&self) -> usize { 2 }
/// #     fn on_wakeup(&mut self, _: NodeId, _: &mut StdRng) -> Option<ContactIntent> { None }
/// #     fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> { None }
/// #     fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _: ()) {}
/// #     fn node_complete(&self, _: NodeId) -> bool { true }
/// # }
/// let stats = Engine::new(EngineConfig::synchronous(42)).run(&mut Noop);
/// assert!(stats.completed);
/// assert_eq!(stats.rounds, 0); // complete before any round ran
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    rng: StdRng,
}

impl Engine {
    /// Creates an engine with its own seeded RNG.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the protocol to completion or budget; returns statistics.
    ///
    /// Equivalent to [`Engine::run_batch`] — same seed, same results.
    pub fn run<P: Protocol>(&mut self, proto: &mut P) -> RunStats {
        self.run_batch(proto)
    }

    /// The no-trace hot path: like [`Engine::run`] but named for what the
    /// trial runner wants — large batches of runs where nobody asks for a
    /// per-round trace. Observation support is compiled out entirely
    /// (statically, via a disabled observer type), so the round loop pays
    /// no closure call and, under the asynchronous model, skips the
    /// round-boundary bookkeeping that only exists to feed observers.
    ///
    /// Produces bit-identical [`RunStats`] to [`Engine::run_observed`]
    /// under the same seed: observers never touch engine randomness.
    pub fn run_batch<P: Protocol>(&mut self, proto: &mut P) -> RunStats {
        self.run_inner(proto, NoObserver)
    }

    /// Like [`Engine::run`] but invokes `observer(round, proto)` after
    /// every completed round (under both time models) — used to trace rank
    /// growth for the figures.
    ///
    /// Under the asynchronous model the observer also fires one final time
    /// when a run completes *mid-round*, with the ceiling round number
    /// (see [`RunStats::rounds`]), so the trace always ends with the
    /// completed state — a run finishing at `m·n + j` timeslots
    /// (`0 < j < n`) is observed at rounds `1, …, m, m+1`, not truncated
    /// at `m`.
    pub fn run_observed<P: Protocol>(
        &mut self,
        proto: &mut P,
        observer: impl FnMut(u64, &P),
    ) -> RunStats {
        self.run_inner(proto, FnObserver(observer))
    }

    pub(crate) fn run_inner<P: Protocol, O: Observe<P>>(
        &mut self,
        proto: &mut P,
        mut obs: O,
    ) -> RunStats {
        let n = proto.num_nodes();
        assert!(n > 0, "protocol must have at least one node");
        let mut stats = RunStats::new(n);
        let mut complete = vec![false; n];
        let mut incomplete = n;
        for (v, flag) in complete.iter_mut().enumerate() {
            if proto.node_complete(v) {
                stats.node_completion_rounds[v] = Some(0);
                *flag = true;
                incomplete -= 1;
            }
        }
        if incomplete == 0 {
            stats.completed = true;
            return stats;
        }
        match self.config.time_model {
            TimeModel::Synchronous => {
                // The incomplete set as an explicit list: the per-round
                // completion sweep touches only these nodes, not all n.
                let mut pending: Vec<NodeId> = (0..n).filter(|&v| !complete[v]).collect();
                let mut scratch = SyncScratch::new(n);
                while stats.rounds < self.config.max_rounds {
                    self.sync_round(proto, &mut stats, &mut scratch, &mut pending);
                    if O::ENABLED {
                        obs.observe(stats.rounds, proto);
                    }
                    if pending.is_empty() {
                        stats.completed = true;
                        break;
                    }
                }
            }
            TimeModel::Asynchronous => {
                let max_slots = self.config.max_rounds.saturating_mul(n as u64);
                while stats.timeslots < max_slots {
                    if stats.timeslots.is_multiple_of(n as u64) {
                        // A new round group of n timeslots begins.
                        proto.on_round_start(stats.timeslots / n as u64 + 1);
                    }
                    self.async_slot(proto, &mut stats, &mut complete, &mut incomplete, n);
                    if O::ENABLED && stats.timeslots.is_multiple_of(n as u64) {
                        stats.rounds = stats.timeslots / n as u64;
                        obs.observe(stats.rounds, proto);
                    }
                    if incomplete == 0 {
                        stats.completed = true;
                        break;
                    }
                }
                // One rounds convention everywhere: ceil(timeslots / n).
                stats.rounds = stats.timeslots.div_ceil(n as u64);
                if O::ENABLED && stats.completed && !stats.timeslots.is_multiple_of(n as u64) {
                    // The run completed mid-round; the round-boundary
                    // observation above never saw the final state.
                    obs.observe(stats.rounds, proto);
                }
            }
        }
        stats
    }

    /// One synchronous round: wakeups → compose everything from pre-round
    /// state → dedup/loss → deliver.
    ///
    /// Same-sender dedup needs no hash set: within one round a pair
    /// `(from, to)` can occur at most twice in the outbox — once as the
    /// *forward* message of `from`'s own intent and once as the *backward*
    /// message of `to`'s intent (each node files exactly one intent). The
    /// outbox is filled in node order with forward before backward, so
    /// "keep the first per pair" reduces to two O(1) lookups against the
    /// intent table. Duplicates are dropped at compose time; `compose` is
    /// still invoked for them so the RNG stream (and hence every seeded
    /// trajectory) is identical to the reference loop, which composed
    /// everything and deduplicated during delivery.
    // ag-lint: hot-path
    fn sync_round<P: Protocol>(
        &mut self,
        proto: &mut P,
        stats: &mut RunStats,
        scratch: &mut SyncScratch<P::Msg>,
        pending: &mut Vec<NodeId>,
    ) {
        let n = proto.num_nodes();
        let SyncScratch {
            intents,
            outbox,
            fwd_live,
            bwd_live,
        } = scratch;
        // 0. Round-start hook (epoch advance for dynamic topologies).
        proto.on_round_start(stats.rounds + 1);
        // 1. Every node wakes and declares its contact.
        intents.clear();
        intents.extend((0..n).map(|v| proto.on_wakeup(v, &mut self.rng)));
        // 2. Compose all messages against the (still unmodified) round-
        //    start data state, resolving same-sender dedup on the fly.
        let dedup = self.config.dedup_same_sender;
        if dedup {
            fwd_live.iter_mut().for_each(|b| *b = false);
            bwd_live.iter_mut().for_each(|b| *b = false);
        }
        for v in 0..n {
            let Some(intent) = intents[v] else { continue };
            let u = intent.partner;
            debug_assert_ne!(u, v, "self-contact");
            if intent.action.sends_forward() {
                match proto.compose(v, u, intent.tag, &mut self.rng) {
                    Some(m) => {
                        // (v → u) already in the outbox iff u's intent
                        // emitted it backward at an earlier position.
                        let dup = dedup
                            && u < v
                            && bwd_live[u]
                            && matches!(intents[u], Some(i) if i.partner == v);
                        if dup {
                            stats.dedup_dropped += 1;
                            proto.discard(m);
                        } else {
                            if dedup {
                                fwd_live[v] = true;
                            }
                            outbox.push((v, u, intent.tag, m));
                        }
                    }
                    None => stats.empty_sends += 1,
                }
            }
            if intent.action.sends_backward() {
                match proto.compose(u, v, intent.tag, &mut self.rng) {
                    Some(m) => {
                        // (u → v) already in the outbox iff u's intent
                        // emitted it forward at an earlier position.
                        let dup = dedup
                            && u < v
                            && fwd_live[u]
                            && matches!(intents[u], Some(i) if i.partner == v);
                        if dup {
                            stats.dedup_dropped += 1;
                            proto.discard(m);
                        } else {
                            if dedup {
                                bwd_live[v] = true;
                            }
                            outbox.push((u, v, intent.tag, m));
                        }
                    }
                    None => stats.empty_sends += 1,
                }
            }
        }
        // 3. Loss injection, then delivery.
        let lossy = self.config.loss_prob > 0.0;
        for (from, to, tag, msg) in outbox.drain(..) {
            if lossy && self.rng.gen_bool(self.config.loss_prob) {
                stats.lost += 1;
                proto.discard(msg);
                continue;
            }
            proto.deliver(from, to, tag, msg);
            stats.messages_delivered += 1;
        }
        stats.rounds += 1;
        stats.timeslots += n as u64;
        // 4. Completion sweep over the still-incomplete nodes only (all of
        //    them are dirty: every node woke, and any may have received).
        let round = stats.rounds;
        pending.retain(|&v| {
            if proto.node_complete(v) {
                stats.node_completion_rounds[v] = Some(round);
                false
            } else {
                true
            }
        });
    }

    /// One asynchronous timeslot: a uniformly random node wakes; both
    /// directions of its contact are composed from pre-contact state and
    /// then delivered.
    // ag-lint: hot-path
    fn async_slot<P: Protocol>(
        &mut self,
        proto: &mut P,
        stats: &mut RunStats,
        complete: &mut [bool],
        incomplete: &mut usize,
        n: usize,
    ) {
        stats.timeslots += 1;
        let round_now = stats.timeslots.div_ceil(n as u64);
        let refresh = |proto: &P,
                       node: NodeId,
                       complete: &mut [bool],
                       incomplete: &mut usize,
                       stats: &mut RunStats| {
            if !complete[node] && proto.node_complete(node) {
                complete[node] = true;
                stats.node_completion_rounds[node] = Some(round_now);
                *incomplete -= 1;
            }
        };
        let v = self.rng.gen_range(0..n);
        let Some(intent) = proto.on_wakeup(v, &mut self.rng) else {
            // The wakeup itself may complete the node (oracle protocols).
            refresh(proto, v, complete, incomplete, stats);
            return;
        };
        let u = intent.partner;
        debug_assert_ne!(u, v, "self-contact");
        // Compose both directions before either delivery: a node cannot
        // receive two messages from the same node in one timeslot, and the
        // reply must not depend on the just-received message.
        let forward = if intent.action.sends_forward() {
            proto.compose(v, u, intent.tag, &mut self.rng)
        } else {
            None
        };
        let backward = if intent.action.sends_backward() {
            proto.compose(u, v, intent.tag, &mut self.rng)
        } else {
            None
        };
        if intent.action.sends_forward() && forward.is_none() {
            stats.empty_sends += 1;
        }
        if intent.action.sends_backward() && backward.is_none() {
            stats.empty_sends += 1;
        }
        for (from, to, msg) in [(v, u, forward), (u, v, backward)] {
            let Some(msg) = msg else { continue };
            if self.config.loss_prob > 0.0 && self.rng.gen_bool(self.config.loss_prob) {
                stats.lost += 1;
                proto.discard(msg);
                continue;
            }
            proto.deliver(from, to, intent.tag, msg);
            stats.messages_delivered += 1;
        }
        // Either participant may have completed (receipt or own wakeup).
        refresh(proto, v, complete, incomplete, stats);
        refresh(proto, u, complete, incomplete, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ContactIntent};

    /// A deterministic "hot potato" counter: node v always pushes to
    /// v+1 mod n; the message is the sender's current value; receivers
    /// take the max. Node complete <=> value == 1. Starts with only node 0
    /// hot. Under correct synchronous snapshot semantics the value moves
    /// exactly one hop per round.
    struct Relay {
        values: Vec<u8>,
    }

    impl Relay {
        fn new(n: usize) -> Self {
            let mut values = vec![0; n];
            values[0] = 1;
            Relay { values }
        }
    }

    impl Protocol for Relay {
        type Msg = u8;

        fn num_nodes(&self) -> usize {
            self.values.len()
        }

        fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
            Some(ContactIntent {
                partner: (node + 1) % self.values.len(),
                action: Action::Push,
                tag: 0,
            })
        }

        fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, _rng: &mut StdRng) -> Option<u8> {
            Some(self.values[from])
        }

        fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: u8) {
            self.values[to] = self.values[to].max(msg);
        }

        fn node_complete(&self, node: NodeId) -> bool {
            self.values[node] == 1
        }
    }

    #[test]
    fn synchronous_rounds_move_information_one_hop() {
        // 6 nodes in a directed relay ring: the paper's snapshot rule means
        // the hot value advances exactly one node per round => 5 rounds.
        let mut proto = Relay::new(6);
        let stats = Engine::new(EngineConfig::synchronous(1)).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(stats.rounds, 5);
        // Every node pushes every round: 6 messages per round.
        assert_eq!(stats.messages_delivered, 5 * 6);
        // Completion rounds are exactly the hop distances.
        for (v, r) in stats.node_completion_rounds.iter().enumerate() {
            assert_eq!(r.unwrap(), v as u64);
        }
    }

    #[test]
    fn asynchronous_delivery_is_immediate() {
        // In the async model the value can hop several times within n
        // slots, but never backwards; completion takes SOME slots and the
        // round count is ceil(slots / n).
        let mut proto = Relay::new(4);
        let stats = Engine::new(EngineConfig::asynchronous(7)).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(stats.rounds, stats.timeslots.div_ceil(4));
        assert!(proto.values.iter().all(|&v| v == 1));
    }

    #[test]
    fn loss_one_blocks_everything() {
        let mut proto = Relay::new(4);
        let cfg = EngineConfig::synchronous(3)
            .with_loss(1.0)
            .with_max_rounds(50);
        let stats = Engine::new(cfg).run(&mut proto);
        assert!(!stats.completed);
        assert_eq!(stats.messages_delivered, 0);
        // Relay pairs are unique within a round: everything is loss.
        assert_eq!(stats.lost, 50 * 4);
        assert_eq!(stats.dedup_dropped, 0);
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let mut proto = Relay::new(10);
        let cfg = EngineConfig::synchronous(3).with_max_rounds(3);
        let stats = Engine::new(cfg).run(&mut proto);
        assert!(!stats.completed);
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.last_completion_round(), None);
        assert_eq!(stats.first_completion_round(), Some(0)); // node 0 starts hot
    }

    #[test]
    fn already_complete_protocol_runs_zero_rounds() {
        struct Done;
        impl Protocol for Done {
            type Msg = ();
            fn num_nodes(&self) -> usize {
                3
            }
            fn on_wakeup(&mut self, _: NodeId, _: &mut StdRng) -> Option<ContactIntent> {
                None
            }
            fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> {
                None
            }
            fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _msg: ()) {}
            fn node_complete(&self, _: NodeId) -> bool {
                true
            }
        }
        let stats = Engine::new(EngineConfig::synchronous(0)).run(&mut Done);
        assert!(stats.completed);
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.timeslots, 0);
    }

    /// An EXCHANGE protocol where both endpoints contact each other,
    /// producing duplicate (from, to) messages in one synchronous round.
    struct MutualExchange {
        delivered: Vec<u32>,
    }

    impl Protocol for MutualExchange {
        type Msg = ();

        fn num_nodes(&self) -> usize {
            2
        }

        fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
            Some(ContactIntent::exchange(1 - node))
        }

        fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> {
            Some(())
        }

        fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, _msg: ()) {
            self.delivered[to] += 1;
        }

        fn node_complete(&self, node: NodeId) -> bool {
            self.delivered[node] >= 2
        }
    }

    #[test]
    fn same_sender_dedup_drops_second_message() {
        // Both nodes EXCHANGE with each other: 4 messages composed, but
        // each (from, to) pair appears twice, so dedup delivers only 2.
        let mut proto = MutualExchange {
            delivered: vec![0, 0],
        };
        let cfg = EngineConfig::synchronous(0).with_max_rounds(1);
        let stats = Engine::new(cfg).run(&mut proto);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(stats.dedup_dropped, 2);
        assert_eq!(proto.delivered, vec![1, 1]);
    }

    /// Regression for the drop-counter conflation bug: with
    /// `loss_prob = 0` a run must report `lost == 0` even when the
    /// same-sender rule discards messages — dedup discards used to be
    /// indistinguishable from channel loss in the stats.
    #[test]
    fn dedup_drops_do_not_count_as_loss() {
        let mut proto = MutualExchange {
            delivered: vec![0, 0],
        };
        let cfg = EngineConfig::synchronous(9).with_max_rounds(3);
        assert_eq!(cfg.loss_prob, 0.0);
        let stats = Engine::new(cfg).run(&mut proto);
        assert!(stats.dedup_dropped > 0, "dedup must be active");
        assert_eq!(stats.lost, 0, "no loss was configured");
        assert_eq!(
            stats.messages_sent(),
            stats.messages_delivered + stats.dedup_dropped
        );
    }

    #[test]
    fn dedup_disabled_delivers_all() {
        let mut proto = MutualExchange {
            delivered: vec![0, 0],
        };
        let cfg = EngineConfig::synchronous(0)
            .with_dedup(false)
            .with_max_rounds(1);
        let stats = Engine::new(cfg).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(stats.messages_delivered, 4);
        assert_eq!(stats.dedup_dropped, 0);
        assert_eq!(proto.delivered, vec![2, 2]);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let mut p = Relay::new(8);
            Engine::new(EngineConfig::asynchronous(seed)).run(&mut p)
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b);
        let c = run(100);
        assert!(a.timeslots != c.timeslots || a.messages_delivered != c.messages_delivered);
    }

    #[test]
    fn run_batch_and_run_observed_agree() {
        // Observers must not perturb the run: all three entry points
        // produce the same stats under the same seed, both time models.
        for cfg in [EngineConfig::synchronous(5), EngineConfig::asynchronous(5)] {
            let batch = Engine::new(cfg).run_batch(&mut Relay::new(7));
            let plain = Engine::new(cfg).run(&mut Relay::new(7));
            let observed = Engine::new(cfg).run_observed(&mut Relay::new(7), |_, _| {});
            assert_eq!(batch, plain);
            assert_eq!(batch, observed);
        }
    }

    #[test]
    fn observer_sees_every_round() {
        let mut proto = Relay::new(5);
        let mut rounds_seen = Vec::new();
        let mut engine = Engine::new(EngineConfig::synchronous(0));
        engine.run_observed(&mut proto, |r, _p| rounds_seen.push(r));
        assert_eq!(rounds_seen, vec![1, 2, 3, 4]);
    }

    /// Regression for the truncated-trace bug: an asynchronous run that
    /// completes mid-round used to hide its final state from the observer
    /// (it only fired at `timeslots % n == 0`). The observer must always
    /// end on the completed state, at the ceiling round number.
    #[test]
    fn async_observer_sees_final_partial_round() {
        let mut mid_round_completions = 0;
        for seed in 0..24u64 {
            let mut proto = Relay::new(5);
            let mut trace: Vec<(u64, bool)> = Vec::new();
            let stats = Engine::new(EngineConfig::asynchronous(seed)).run_observed(
                &mut proto,
                |round, p| {
                    trace.push((round, p.values.iter().all(|&v| v == 1)));
                },
            );
            assert!(stats.completed);
            let &(last_round, last_done) = trace.last().expect("observer fired");
            assert_eq!(
                last_round, stats.rounds,
                "trace must end at the final round"
            );
            assert!(last_done, "final observation must show the completed state");
            if !stats.timeslots.is_multiple_of(5) {
                mid_round_completions += 1;
                // The partial round is observed exactly once.
                let final_obs = trace.iter().filter(|&&(r, _)| r == last_round).count();
                assert_eq!(final_obs, 1);
            }
        }
        assert!(
            mid_round_completions > 0,
            "test never exercised a mid-round completion"
        );
    }

    /// A two-node protocol that completes at an exact global timeslot:
    /// `on_wakeup` runs once per slot and both participants are refreshed
    /// every slot, so completion lands precisely when the counter hits the
    /// target.
    struct SlotCounter {
        slots: u64,
        target: u64,
    }

    impl Protocol for SlotCounter {
        type Msg = ();

        fn num_nodes(&self) -> usize {
            2
        }

        fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
            self.slots += 1;
            Some(ContactIntent {
                partner: 1 - node,
                action: Action::Push,
                tag: 0,
            })
        }

        fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> {
            Some(())
        }

        fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _msg: ()) {}

        fn node_complete(&self, _: NodeId) -> bool {
            self.slots >= self.target
        }
    }

    /// Boundary pin for the unified ceiling convention: completion at
    /// exactly `n·m` timeslots reports `m` rounds; at `n·m + 1` it
    /// reports `m + 1` — in `stats.rounds`, in the per-node completion
    /// rounds, and in the observer's final round number.
    #[test]
    fn async_round_accounting_boundary() {
        let n = 2u64;
        let m = 5u64;
        for (target, want_rounds) in [(n * m, m), (n * m + 1, m + 1)] {
            let mut proto = SlotCounter { slots: 0, target };
            let mut last_observed = None;
            let stats = Engine::new(EngineConfig::asynchronous(1))
                .run_observed(&mut proto, |round, _p| last_observed = Some(round));
            assert!(stats.completed);
            assert_eq!(stats.timeslots, target, "completion slot must be exact");
            assert_eq!(stats.rounds, want_rounds, "target {target}");
            assert_eq!(stats.rounds, stats.timeslots.div_ceil(n));
            assert_eq!(last_observed, Some(want_rounds));
            for r in &stats.node_completion_rounds {
                assert_eq!(*r, Some(want_rounds));
            }
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        let _ = EngineConfig::default().with_loss(1.5);
    }
}
