//! The simulation engine: drives a [`Protocol`] under either time model.

use ag_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::Protocol;
use crate::stats::RunStats;

/// The paper's two time models (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimeModel {
    /// Every node wakes once per round; messages composed from start-of-
    /// round state, delivered at the round boundary.
    #[default]
    Synchronous,
    /// One uniformly random node wakes per timeslot; delivery is
    /// immediate. `n` timeslots = 1 round.
    Asynchronous,
}

/// Engine configuration.
///
/// `loss_prob` and `dedup_same_sender` go beyond the paper: loss is a
/// robustness ablation (the paper assumes reliable channels), and dedup
/// implements the paper's synchronous-model simplifying assumption ("if a
/// node receives 2 messages from the same node at the same round, it will
/// discard the second") — on by default, toggleable for the ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Synchronous rounds or asynchronous timeslots grouping.
    pub time_model: TimeModel,
    /// Stop (unfinished) after this many rounds.
    pub max_rounds: u64,
    /// Per-message drop probability in `[0, 1]`.
    pub loss_prob: f64,
    /// Keep only the first message per (sender, receiver) pair within a
    /// synchronous round.
    pub dedup_same_sender: bool,
    /// RNG seed: equal seeds give bit-identical runs.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            time_model: TimeModel::Synchronous,
            max_rounds: 1_000_000,
            loss_prob: 0.0,
            dedup_same_sender: true,
            seed: 0,
        }
    }
}

impl EngineConfig {
    /// Synchronous config with a seed.
    #[must_use]
    pub fn synchronous(seed: u64) -> Self {
        EngineConfig {
            time_model: TimeModel::Synchronous,
            seed,
            ..EngineConfig::default()
        }
    }

    /// Asynchronous config with a seed.
    #[must_use]
    pub fn asynchronous(seed: u64) -> Self {
        EngineConfig {
            time_model: TimeModel::Asynchronous,
            seed,
            ..EngineConfig::default()
        }
    }

    /// Sets the round budget (builder-style).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the loss probability (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.loss_prob = p;
        self
    }

    /// Enables/disables synchronous same-sender dedup (builder-style).
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup_same_sender = dedup;
        self
    }
}

/// Drives a [`Protocol`] to completion (or budget exhaustion).
///
/// The engine assumes node completion is *monotone* (once
/// [`Protocol::node_complete`] returns true for a node it stays true) —
/// which holds for every protocol in this workspace since decoder ranks and
/// heard-sets only grow. Completion is re-checked once per node per
/// synchronous round, and per contact participant per asynchronous slot
/// (a node's status can change on receipt *or* on its own wakeup, e.g.
/// under an oracle tree protocol).
///
/// # Examples
///
/// ```
/// use ag_sim::{Engine, EngineConfig};
/// # use ag_sim::{ContactIntent, Protocol};
/// # use ag_graph::NodeId;
/// # use rand::rngs::StdRng;
/// # struct Noop;
/// # impl Protocol for Noop {
/// #     type Msg = ();
/// #     fn num_nodes(&self) -> usize { 2 }
/// #     fn on_wakeup(&mut self, _: NodeId, _: &mut StdRng) -> Option<ContactIntent> { None }
/// #     fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> { None }
/// #     fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _: ()) {}
/// #     fn node_complete(&self, _: NodeId) -> bool { true }
/// # }
/// let stats = Engine::new(EngineConfig::synchronous(42)).run(&mut Noop);
/// assert!(stats.completed);
/// assert_eq!(stats.rounds, 0); // complete before any round ran
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    rng: StdRng,
}

impl Engine {
    /// Creates an engine with its own seeded RNG.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the protocol to completion or budget; returns statistics.
    pub fn run<P: Protocol>(&mut self, proto: &mut P) -> RunStats {
        self.run_observed(proto, |_, _: &P| {})
    }

    /// Like [`Engine::run`] but invokes `observer(round, proto)` after
    /// every completed round (under both time models) — used to trace rank
    /// growth for the figures.
    pub fn run_observed<P: Protocol>(
        &mut self,
        proto: &mut P,
        mut observer: impl FnMut(u64, &P),
    ) -> RunStats {
        let n = proto.num_nodes();
        assert!(n > 0, "protocol must have at least one node");
        let mut stats = RunStats::new(n);
        let mut complete = vec![false; n];
        let mut incomplete = n;
        for (v, flag) in complete.iter_mut().enumerate() {
            if proto.node_complete(v) {
                stats.node_completion_rounds[v] = Some(0);
                *flag = true;
                incomplete -= 1;
            }
        }
        if incomplete == 0 {
            stats.completed = true;
            return stats;
        }
        match self.config.time_model {
            TimeModel::Synchronous => {
                while stats.rounds < self.config.max_rounds {
                    self.sync_round(proto, &mut stats, &mut complete, &mut incomplete);
                    observer(stats.rounds, proto);
                    if incomplete == 0 {
                        stats.completed = true;
                        break;
                    }
                }
            }
            TimeModel::Asynchronous => {
                let max_slots = self.config.max_rounds.saturating_mul(n as u64);
                while stats.timeslots < max_slots {
                    self.async_slot(proto, &mut stats, &mut complete, &mut incomplete, n);
                    if stats.timeslots.is_multiple_of(n as u64) {
                        stats.rounds = stats.timeslots / n as u64;
                        observer(stats.rounds, proto);
                    }
                    if incomplete == 0 {
                        stats.completed = true;
                        stats.rounds = stats.timeslots.div_ceil(n as u64);
                        break;
                    }
                }
                if !stats.completed {
                    stats.rounds = stats.timeslots.div_ceil(n as u64);
                }
            }
        }
        stats
    }

    /// One synchronous round: wakeups → compose everything from pre-round
    /// state → dedup/loss → deliver.
    fn sync_round<P: Protocol>(
        &mut self,
        proto: &mut P,
        stats: &mut RunStats,
        complete: &mut [bool],
        incomplete: &mut usize,
    ) {
        let n = proto.num_nodes();
        // 1. Every node wakes and declares its contact.
        let intents: Vec<_> = (0..n).map(|v| proto.on_wakeup(v, &mut self.rng)).collect();
        // 2. Compose all messages against the (still unmodified) round-
        //    start data state.
        let mut outbox: Vec<(NodeId, NodeId, u32, P::Msg)> = Vec::new();
        for (v, intent) in intents.iter().enumerate() {
            let Some(intent) = intent else { continue };
            let u = intent.partner;
            debug_assert_ne!(u, v, "self-contact");
            if intent.action.sends_forward() {
                match proto.compose(v, u, intent.tag, &mut self.rng) {
                    Some(m) => outbox.push((v, u, intent.tag, m)),
                    None => stats.empty_sends += 1,
                }
            }
            if intent.action.sends_backward() {
                match proto.compose(u, v, intent.tag, &mut self.rng) {
                    Some(m) => outbox.push((u, v, intent.tag, m)),
                    None => stats.empty_sends += 1,
                }
            }
        }
        // 3. Same-sender dedup (keep the first per (from, to) pair).
        let mut seen: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        for (from, to, tag, msg) in outbox {
            if self.config.dedup_same_sender && !seen.insert((from, to)) {
                stats.messages_dropped += 1;
                continue;
            }
            // 4. Loss injection.
            if self.config.loss_prob > 0.0 && self.rng.gen_bool(self.config.loss_prob) {
                stats.messages_dropped += 1;
                continue;
            }
            // 5. Delivery.
            proto.deliver(from, to, tag, msg);
            stats.messages_delivered += 1;
        }
        stats.rounds += 1;
        stats.timeslots += n as u64;
        // 6. Completion sweep: receipt OR a node's own wakeup may have
        //    completed it (e.g. oracle tree protocols).
        for (v, flag) in complete.iter_mut().enumerate() {
            if !*flag && proto.node_complete(v) {
                *flag = true;
                stats.node_completion_rounds[v] = Some(stats.rounds);
                *incomplete -= 1;
            }
        }
    }

    /// One asynchronous timeslot: a uniformly random node wakes; both
    /// directions of its contact are composed from pre-contact state and
    /// then delivered.
    fn async_slot<P: Protocol>(
        &mut self,
        proto: &mut P,
        stats: &mut RunStats,
        complete: &mut [bool],
        incomplete: &mut usize,
        n: usize,
    ) {
        stats.timeslots += 1;
        let round_now = stats.timeslots.div_ceil(n as u64);
        let refresh = |proto: &P,
                       node: NodeId,
                       complete: &mut [bool],
                       incomplete: &mut usize,
                       stats: &mut RunStats| {
            if !complete[node] && proto.node_complete(node) {
                complete[node] = true;
                stats.node_completion_rounds[node] = Some(round_now);
                *incomplete -= 1;
            }
        };
        let v = self.rng.gen_range(0..n);
        let Some(intent) = proto.on_wakeup(v, &mut self.rng) else {
            // The wakeup itself may complete the node (oracle protocols).
            refresh(proto, v, complete, incomplete, stats);
            return;
        };
        let u = intent.partner;
        debug_assert_ne!(u, v, "self-contact");
        // Compose both directions before either delivery: a node cannot
        // receive two messages from the same node in one timeslot, and the
        // reply must not depend on the just-received message.
        let forward = if intent.action.sends_forward() {
            proto.compose(v, u, intent.tag, &mut self.rng)
        } else {
            None
        };
        let backward = if intent.action.sends_backward() {
            proto.compose(u, v, intent.tag, &mut self.rng)
        } else {
            None
        };
        if intent.action.sends_forward() && forward.is_none() {
            stats.empty_sends += 1;
        }
        if intent.action.sends_backward() && backward.is_none() {
            stats.empty_sends += 1;
        }
        for (from, to, msg) in [(v, u, forward), (u, v, backward)] {
            let Some(msg) = msg else { continue };
            if self.config.loss_prob > 0.0 && self.rng.gen_bool(self.config.loss_prob) {
                stats.messages_dropped += 1;
                continue;
            }
            proto.deliver(from, to, intent.tag, msg);
            stats.messages_delivered += 1;
        }
        // Either participant may have completed (receipt or own wakeup).
        refresh(proto, v, complete, incomplete, stats);
        refresh(proto, u, complete, incomplete, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ContactIntent};

    /// A deterministic "hot potato" counter: node v always pushes to
    /// v+1 mod n; the message is the sender's current value; receivers
    /// take the max. Node complete <=> value == 1. Starts with only node 0
    /// hot. Under correct synchronous snapshot semantics the value moves
    /// exactly one hop per round.
    struct Relay {
        values: Vec<u8>,
    }

    impl Relay {
        fn new(n: usize) -> Self {
            let mut values = vec![0; n];
            values[0] = 1;
            Relay { values }
        }
    }

    impl Protocol for Relay {
        type Msg = u8;

        fn num_nodes(&self) -> usize {
            self.values.len()
        }

        fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
            Some(ContactIntent {
                partner: (node + 1) % self.values.len(),
                action: Action::Push,
                tag: 0,
            })
        }

        fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, _rng: &mut StdRng) -> Option<u8> {
            Some(self.values[from])
        }

        fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, msg: u8) {
            self.values[to] = self.values[to].max(msg);
        }

        fn node_complete(&self, node: NodeId) -> bool {
            self.values[node] == 1
        }
    }

    #[test]
    fn synchronous_rounds_move_information_one_hop() {
        // 6 nodes in a directed relay ring: the paper's snapshot rule means
        // the hot value advances exactly one node per round => 5 rounds.
        let mut proto = Relay::new(6);
        let stats = Engine::new(EngineConfig::synchronous(1)).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(stats.rounds, 5);
        // Every node pushes every round: 6 messages per round.
        assert_eq!(stats.messages_delivered, 5 * 6);
        // Completion rounds are exactly the hop distances.
        for (v, r) in stats.node_completion_rounds.iter().enumerate() {
            assert_eq!(r.unwrap(), v as u64);
        }
    }

    #[test]
    fn asynchronous_delivery_is_immediate() {
        // In the async model the value can hop several times within n
        // slots, but never backwards; completion takes SOME slots and the
        // round count is ceil(slots / n).
        let mut proto = Relay::new(4);
        let stats = Engine::new(EngineConfig::asynchronous(7)).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(stats.rounds, stats.timeslots.div_ceil(4));
        assert!(proto.values.iter().all(|&v| v == 1));
    }

    #[test]
    fn loss_one_blocks_everything() {
        let mut proto = Relay::new(4);
        let cfg = EngineConfig::synchronous(3)
            .with_loss(1.0)
            .with_max_rounds(50);
        let stats = Engine::new(cfg).run(&mut proto);
        assert!(!stats.completed);
        assert_eq!(stats.messages_delivered, 0);
        assert_eq!(stats.messages_dropped, 50 * 4);
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let mut proto = Relay::new(10);
        let cfg = EngineConfig::synchronous(3).with_max_rounds(3);
        let stats = Engine::new(cfg).run(&mut proto);
        assert!(!stats.completed);
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.last_completion_round(), None);
        assert_eq!(stats.first_completion_round(), Some(0)); // node 0 starts hot
    }

    #[test]
    fn already_complete_protocol_runs_zero_rounds() {
        struct Done;
        impl Protocol for Done {
            type Msg = ();
            fn num_nodes(&self) -> usize {
                3
            }
            fn on_wakeup(&mut self, _: NodeId, _: &mut StdRng) -> Option<ContactIntent> {
                None
            }
            fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> {
                None
            }
            fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _msg: ()) {}
            fn node_complete(&self, _: NodeId) -> bool {
                true
            }
        }
        let stats = Engine::new(EngineConfig::synchronous(0)).run(&mut Done);
        assert!(stats.completed);
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.timeslots, 0);
    }

    /// An EXCHANGE protocol where both endpoints contact each other,
    /// producing duplicate (from, to) messages in one synchronous round.
    struct MutualExchange {
        delivered: Vec<u32>,
    }

    impl Protocol for MutualExchange {
        type Msg = ();

        fn num_nodes(&self) -> usize {
            2
        }

        fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
            Some(ContactIntent::exchange(1 - node))
        }

        fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> {
            Some(())
        }

        fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, _msg: ()) {
            self.delivered[to] += 1;
        }

        fn node_complete(&self, node: NodeId) -> bool {
            self.delivered[node] >= 2
        }
    }

    #[test]
    fn same_sender_dedup_drops_second_message() {
        // Both nodes EXCHANGE with each other: 4 messages composed, but
        // each (from, to) pair appears twice, so dedup delivers only 2.
        let mut proto = MutualExchange {
            delivered: vec![0, 0],
        };
        let cfg = EngineConfig::synchronous(0).with_max_rounds(1);
        let stats = Engine::new(cfg).run(&mut proto);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(stats.messages_dropped, 2);
        assert_eq!(proto.delivered, vec![1, 1]);
    }

    #[test]
    fn dedup_disabled_delivers_all() {
        let mut proto = MutualExchange {
            delivered: vec![0, 0],
        };
        let cfg = EngineConfig::synchronous(0)
            .with_dedup(false)
            .with_max_rounds(1);
        let stats = Engine::new(cfg).run(&mut proto);
        assert!(stats.completed);
        assert_eq!(stats.messages_delivered, 4);
        assert_eq!(proto.delivered, vec![2, 2]);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let mut p = Relay::new(8);
            Engine::new(EngineConfig::asynchronous(seed)).run(&mut p)
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b);
        let c = run(100);
        assert!(a.timeslots != c.timeslots || a.messages_delivered != c.messages_delivered);
    }

    #[test]
    fn observer_sees_every_round() {
        let mut proto = Relay::new(5);
        let mut rounds_seen = Vec::new();
        let mut engine = Engine::new(EngineConfig::synchronous(0));
        engine.run_observed(&mut proto, |r, _p| rounds_seen.push(r));
        assert_eq!(rounds_seen, vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        let _ = EngineConfig::default().with_loss(1.5);
    }
}
