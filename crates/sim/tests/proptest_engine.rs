//! Property-based tests of the engine's invariants under a randomized
//! flooding protocol.

use ag_graph::{builders, Graph, NodeId};
use ag_sim::{Action, CommModel, ContactIntent, Engine, EngineConfig, PartnerSelector, Protocol};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Epidemic flooding: nodes carry a boolean, EXCHANGE spreads it.
struct Flood {
    graph: Graph,
    informed: Vec<bool>,
    selector: PartnerSelector,
    action: Action,
}

impl Flood {
    fn new(graph: Graph, action: Action, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let selector = PartnerSelector::new(&graph, CommModel::Uniform, &mut rng);
        let mut informed = vec![false; graph.n()];
        informed[0] = true;
        Flood {
            graph,
            informed,
            selector,
            action,
        }
    }
}

impl Protocol for Flood {
    type Msg = ();

    fn num_nodes(&self) -> usize {
        self.graph.n()
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        let partner = self.selector.next_partner(&self.graph, node, rng)?;
        Some(ContactIntent {
            partner,
            action: self.action,
            tag: 0,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, _rng: &mut StdRng) -> Option<()> {
        self.informed[from].then_some(())
    }

    fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, _msg: ()) {
        self.informed[to] = true;
    }

    fn node_complete(&self, node: NodeId) -> bool {
        self.informed[node]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flooding completes under every action/time-model combination on a
    /// connected graph, and completion rounds are monotone along any path
    /// from the source in the synchronous model.
    #[test]
    fn flooding_completes(seed in any::<u64>(), n in 3usize..20, sync in any::<bool>(),
                          action_pick in 0u8..3) {
        let action = match action_pick {
            0 => Action::Push,
            1 => Action::Pull,
            _ => Action::Exchange,
        };
        let g = builders::cycle(n).unwrap();
        let mut proto = Flood::new(g, action, seed);
        let cfg = if sync {
            EngineConfig::synchronous(seed)
        } else {
            EngineConfig::asynchronous(seed)
        }
        .with_max_rounds(500_000);
        let stats = Engine::new(cfg).run(&mut proto);
        prop_assert!(stats.completed);
        // Every node's completion round is recorded and the source is 0.
        prop_assert_eq!(stats.node_completion_rounds[0], Some(0));
        prop_assert!(stats.node_completion_rounds.iter().all(Option::is_some));
        // Bookkeeping identities.
        prop_assert_eq!(stats.messages_sent(),
                        stats.messages_delivered + stats.dedup_dropped + stats.lost);
        prop_assert_eq!(stats.last_completion_round().unwrap() <= stats.rounds, true);
    }

    /// In the synchronous model information travels at most one hop per
    /// round: completion round of v >= dist(0, v).
    #[test]
    fn sync_speed_of_light(seed in any::<u64>(), n in 4usize..24) {
        let g = builders::path(n).unwrap();
        let bfs = g.bfs_tree(0);
        let mut proto = Flood::new(g.clone(), Action::Exchange, seed);
        let stats = Engine::new(
            EngineConfig::synchronous(seed).with_max_rounds(500_000),
        )
        .run(&mut proto);
        prop_assert!(stats.completed);
        for v in 0..n {
            let round = stats.node_completion_rounds[v].unwrap();
            prop_assert!(
                round >= u64::from(bfs.dist(v).unwrap()),
                "node {v} informed at round {round}, below its distance"
            );
        }
    }

    /// Loss slows flooding but never breaks completion, and the message
    /// accounting identity holds. (A short lucky run may legitimately see
    /// zero drops, so we only require drops when enough messages flowed
    /// for zero drops to be a ~10^-9 event.)
    #[test]
    fn lossy_flooding_accounting(seed in any::<u64>(), loss in 0.1f64..0.6) {
        let g = builders::complete(8).unwrap();
        let mut proto = Flood::new(g, Action::Exchange, seed);
        let cfg = EngineConfig::synchronous(seed)
            .with_loss(loss)
            .with_max_rounds(500_000);
        let stats = Engine::new(cfg).run(&mut proto);
        prop_assert!(stats.completed);
        prop_assert_eq!(stats.messages_sent(),
                        stats.messages_delivered + stats.dedup_dropped + stats.lost);
        if stats.messages_sent() > 200 {
            prop_assert!(stats.lost > 0);
        }
    }
}
