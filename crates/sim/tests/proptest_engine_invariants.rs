//! Engine accounting and monotonicity invariants, property-tested over
//! random graphs, both time models and loss ∈ {0, 0.3}:
//!
//! 1. **Conservation**: every `compose` attempt is accounted for exactly
//!    once — `delivered + lost + dedup_dropped + empty_sends` equals the
//!    number of compose calls the engine made.
//! 2. **Loss attribution**: `lost == 0` whenever `loss_prob == 0`, and
//!    `dedup_dropped == 0` whenever dedup is disabled or the model is
//!    asynchronous.
//! 3. **Completion monotonicity**: observed through `run_observed`, a
//!    node that reports complete never reverts, and the recorded
//!    per-node completion rounds never exceed `stats.rounds`.
//! 4. **Pool balance**: for the pooled algebraic-gossip protocol — bare
//!    or wrapped in `WithCrashes` — pooled + in-flight message buffers
//!    stay constant across rounds: at every round boundary no message is
//!    in flight, so the pool's idle count must equal its preallocated
//!    ceiling for the whole run, whatever the engine drops to dedup,
//!    loss, or crashed receivers.

use std::cell::Cell;

use ag_graph::{builders, Graph, NodeId};
use ag_sim::{
    Action, CommModel, ContactIntent, Engine, EngineConfig, PartnerSelector, Protocol, TimeModel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flooding protocol that counts every `compose` invocation (the engine
/// promises to call `compose` once per attempted send direction).
struct CountingFlood {
    graph: Graph,
    informed: Vec<bool>,
    selector: PartnerSelector,
    action: Action,
    compose_calls: Cell<u64>,
}

impl CountingFlood {
    fn new(graph: Graph, action: Action, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let selector = PartnerSelector::new(&graph, CommModel::Uniform, &mut rng);
        let mut informed = vec![false; graph.n()];
        informed[0] = true;
        CountingFlood {
            graph,
            informed,
            selector,
            action,
            compose_calls: Cell::new(0),
        }
    }
}

impl Protocol for CountingFlood {
    type Msg = ();

    fn num_nodes(&self) -> usize {
        self.graph.n()
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        let partner = self.selector.next_partner(&self.graph, node, rng)?;
        Some(ContactIntent {
            partner,
            action: self.action,
            tag: 0,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, _rng: &mut StdRng) -> Option<()> {
        self.compose_calls.set(self.compose_calls.get() + 1);
        self.informed[from].then_some(())
    }

    fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, _msg: ()) {
        self.informed[to] = true;
    }

    fn node_complete(&self, node: NodeId) -> bool {
        self.informed[node]
    }
}

fn random_graph(seed: u64, n: usize, regular: bool) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    if regular {
        let d = if n % 2 == 0 { 3 } else { 4 };
        builders::random_regular(n, d, &mut rng)
            .unwrap_or_else(|_| builders::cycle(n.max(3)).unwrap())
    } else {
        builders::erdos_renyi_connected(n, 0.4, &mut rng)
            .unwrap_or_else(|_| builders::cycle(n.max(3)).unwrap())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation + loss attribution, over random graphs, both time
    /// models, all actions, dedup on/off, loss in {0, 0.3}.
    #[test]
    fn message_accounting_is_conserved(
        seed in any::<u64>(),
        n in 4usize..28,
        regular in any::<bool>(),
        sync in any::<bool>(),
        action_pick in 0u8..3,
        lossy in any::<bool>(),
        dedup in any::<bool>(),
    ) {
        let action = match action_pick {
            0 => Action::Push,
            1 => Action::Pull,
            _ => Action::Exchange,
        };
        let graph = random_graph(seed, n, regular);
        let mut proto = CountingFlood::new(graph, action, seed ^ 0xC0DE);
        let mut cfg = if sync {
            EngineConfig::synchronous(seed)
        } else {
            EngineConfig::asynchronous(seed)
        }
        .with_dedup(dedup)
        .with_max_rounds(50_000);
        if lossy {
            cfg = cfg.with_loss(0.3);
        }
        let stats = Engine::new(cfg).run(&mut proto);
        prop_assert!(stats.completed, "flooding must finish within budget");
        // 1. Conservation: every compose attempt lands in exactly one
        //    bucket.
        prop_assert_eq!(
            proto.compose_calls.get(),
            stats.messages_delivered + stats.lost + stats.dedup_dropped + stats.empty_sends,
            "composed {} != delivered {} + lost {} + dedup {} + empty {}",
            proto.compose_calls.get(),
            stats.messages_delivered,
            stats.lost,
            stats.dedup_dropped,
            stats.empty_sends
        );
        prop_assert_eq!(
            stats.messages_sent(),
            stats.messages_delivered + stats.dedup_dropped + stats.lost
        );
        // 2. Attribution: no phantom losses, no phantom dedup.
        if !lossy {
            prop_assert_eq!(stats.lost, 0);
        }
        if !dedup || cfg.time_model == TimeModel::Asynchronous {
            prop_assert_eq!(stats.dedup_dropped, 0);
        }
        // 3. Per-node completion rounds are bounded by the run length.
        for r in stats.node_completion_rounds.iter().flatten() {
            prop_assert!(*r <= stats.rounds);
        }
        prop_assert_eq!(stats.last_completion_round().is_some(), true);
    }

    /// Completion is monotone under the observer: once a node reports
    /// complete at some observed round it stays complete at every later
    /// observation, and rounds as seen by the observer strictly increase
    /// (with the final partial-round observation included exactly once).
    #[test]
    fn completion_is_monotone(
        seed in any::<u64>(),
        n in 4usize..20,
        sync in any::<bool>(),
        lossy in any::<bool>(),
    ) {
        let graph = random_graph(seed, n, false);
        let n_nodes = graph.n();
        let mut proto = CountingFlood::new(graph, Action::Exchange, seed ^ 0xBEE);
        let mut cfg = if sync {
            EngineConfig::synchronous(seed)
        } else {
            EngineConfig::asynchronous(seed)
        }
        .with_max_rounds(50_000);
        if lossy {
            cfg = cfg.with_loss(0.3);
        }
        let mut prev_complete = vec![false; n_nodes];
        let mut prev_round = 0u64;
        let mut violations = Vec::new();
        let stats = Engine::new(cfg).run_observed(&mut proto, |round, p| {
            if round <= prev_round && prev_round != 0 {
                violations.push(format!("round went {prev_round} -> {round}"));
            }
            prev_round = round;
            for v in 0..n_nodes {
                let now = p.node_complete(v);
                if prev_complete[v] && !now {
                    violations.push(format!("node {v} reverted at round {round}"));
                }
                prev_complete[v] = now;
            }
        });
        prop_assert!(stats.completed);
        prop_assert!(violations.is_empty(), "{:?}", violations);
        prop_assert_eq!(prev_round, stats.rounds);
        // The final observation saw every node complete.
        prop_assert!(prev_complete.iter().all(|&c| c));
    }

    /// Pool balance over the real pooled protocol: at every observed
    /// round boundary (and at the end of the run) the `RowPool`'s idle
    /// count equals the preallocated in-flight ceiling — no buffer is
    /// ever leaked to a drop path (dedup, loss, crashed receiver) and
    /// none is held across a boundary. Runs bare and `WithCrashes`-
    /// wrapped, both time models, loss ∈ {0, 0.3}.
    #[test]
    fn pool_balance_is_invariant(
        seed in any::<u64>(),
        n in 6usize..20,
        sync in any::<bool>(),
        lossy in any::<bool>(),
        with_crashes in any::<bool>(),
    ) {
        use ag_gf::Gf256;
        use algebraic_gossip::{AgConfig, AlgebraicGossip, CrashPlan, WithCrashes};

        let graph = random_graph(seed, n, false);
        let cfg = AgConfig::new(4).with_payload_len(2);
        let proto = AlgebraicGossip::<Gf256>::new(&graph, &cfg, seed ^ 0x9001)
            .expect("connected graph");
        let prewarm = proto.pool_prewarm();
        prop_assert_eq!(proto.pool_idle(), prewarm);
        let mut ecfg = if sync {
            EngineConfig::synchronous(seed)
        } else {
            EngineConfig::asynchronous(seed)
        }
        // Completion is NOT asserted (crashes may strand messages); the
        // budget only bounds the observation window.
        .with_max_rounds(300);
        if lossy {
            ecfg = ecfg.with_loss(0.3);
        }
        let mut balanced = true;
        let final_idle = if with_crashes {
            let plan = CrashPlan::random_fraction(graph.n(), 0.25, 2, seed ^ 0xC4A5);
            let mut wrapped = WithCrashes::new(proto, plan);
            let _ = Engine::new(ecfg).run_observed(&mut wrapped, |_, p| {
                balanced &= p.inner().pool_idle() == prewarm;
            });
            wrapped.inner().pool_idle()
        } else {
            let mut bare = proto;
            let _ = Engine::new(ecfg).run_observed(&mut bare, |_, p| {
                balanced &= p.pool_idle() == prewarm;
            });
            bare.pool_idle()
        };
        prop_assert!(balanced, "pool idle diverged from {prewarm} at a round boundary");
        prop_assert_eq!(final_idle, prewarm, "pool did not end balanced");
    }
}
