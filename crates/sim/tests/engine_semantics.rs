//! Extra engine-semantics tests: direction handling, accounting, and the
//! paper's model rules, exercised through a purpose-built probe protocol.

use ag_graph::NodeId;
use ag_sim::{Action, ContactIntent, Engine, EngineConfig, Protocol};
use rand::rngs::StdRng;

/// A probe protocol: node 0 contacts node 1 every wakeup with a fixed
/// action; both nodes record what they receive. Everyone else idles.
struct Probe {
    n: usize,
    action: Action,
    received: Vec<Vec<(NodeId, u32)>>,
    target_msgs: u32,
}

impl Protocol for Probe {
    type Msg = u32;

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
        (node == 0).then_some(ContactIntent {
            partner: 1,
            action: self.action,
            tag: 7,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, tag: u32, _rng: &mut StdRng) -> Option<u32> {
        assert_eq!(tag, 7, "tag must round-trip");
        Some(from as u32)
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, tag: u32, msg: u32) {
        assert_eq!(tag, 7);
        assert_eq!(msg, from as u32, "message carries composer identity");
        self.received[to].push((from, tag));
    }

    fn node_complete(&self, node: NodeId) -> bool {
        // Complete once both endpoints have seen enough traffic; idle
        // nodes are immediately complete.
        if node > 1 {
            return true;
        }
        let total: usize = self.received[0].len() + self.received[1].len();
        total >= self.target_msgs as usize
    }
}

fn probe(action: Action, rounds: u64) -> Probe {
    let mut p = Probe {
        n: 4,
        action,
        received: vec![Vec::new(); 4],
        target_msgs: u32::MAX, // run until budget
    };
    let cfg = EngineConfig::synchronous(1).with_max_rounds(rounds);
    let _ = Engine::new(cfg).run(&mut p);
    p
}

#[test]
fn push_sends_forward_only() {
    let p = probe(Action::Push, 5);
    assert_eq!(p.received[1].len(), 5, "partner gets one push per round");
    assert!(p.received[0].is_empty(), "initiator must receive nothing");
}

#[test]
fn pull_sends_backward_only() {
    let p = probe(Action::Pull, 5);
    assert_eq!(p.received[0].len(), 5, "initiator pulls one per round");
    assert!(p.received[1].is_empty(), "partner must receive nothing");
}

#[test]
fn exchange_sends_both_directions() {
    let p = probe(Action::Exchange, 5);
    assert_eq!(p.received[0].len(), 5);
    assert_eq!(p.received[1].len(), 5);
    // All messages from the expected peers.
    assert!(p.received[0].iter().all(|&(from, _)| from == 1));
    assert!(p.received[1].iter().all(|&(from, _)| from == 0));
}

#[test]
fn empty_sends_are_counted_not_delivered() {
    struct Silent;
    impl Protocol for Silent {
        type Msg = ();
        fn num_nodes(&self) -> usize {
            2
        }
        fn on_wakeup(&mut self, node: NodeId, _rng: &mut StdRng) -> Option<ContactIntent> {
            (node == 0).then_some(ContactIntent::exchange(1))
        }
        fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> {
            None // nothing to say, ever
        }
        fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _msg: ()) {
            panic!("nothing should ever be delivered");
        }
        fn node_complete(&self, _: NodeId) -> bool {
            false
        }
    }
    let cfg = EngineConfig::synchronous(1).with_max_rounds(3);
    let stats = Engine::new(cfg).run(&mut Silent);
    assert_eq!(stats.messages_delivered, 0);
    // EXCHANGE attempts 2 sends per round, both empty: 3 rounds * 2.
    assert_eq!(stats.empty_sends, 6);
}

#[test]
fn async_round_accounting_is_ceil_of_slots() {
    // Under the asynchronous model with an always-idle protocol, the
    // engine still consumes exactly max_rounds * n slots.
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        fn num_nodes(&self) -> usize {
            5
        }
        fn on_wakeup(&mut self, _: NodeId, _: &mut StdRng) -> Option<ContactIntent> {
            None
        }
        fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> {
            None
        }
        fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _msg: ()) {}
        fn node_complete(&self, _: NodeId) -> bool {
            false
        }
    }
    let cfg = EngineConfig::asynchronous(2).with_max_rounds(7);
    let stats = Engine::new(cfg).run(&mut Idle);
    assert!(!stats.completed);
    assert_eq!(stats.timeslots, 7 * 5);
    assert_eq!(stats.rounds, 7);
}

#[test]
fn observer_fires_once_per_round_in_async_mode() {
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        fn num_nodes(&self) -> usize {
            6
        }
        fn on_wakeup(&mut self, _: NodeId, _: &mut StdRng) -> Option<ContactIntent> {
            None
        }
        fn compose(&self, _: NodeId, _: NodeId, _: u32, _: &mut StdRng) -> Option<()> {
            None
        }
        fn deliver(&mut self, _: NodeId, _: NodeId, _: u32, _msg: ()) {}
        fn node_complete(&self, _: NodeId) -> bool {
            false
        }
    }
    let mut rounds_seen = Vec::new();
    let cfg = EngineConfig::asynchronous(3).with_max_rounds(4);
    Engine::new(cfg).run_observed(&mut Idle, |r, _p| rounds_seen.push(r));
    assert_eq!(rounds_seen, vec![1, 2, 3, 4]);
}

#[test]
fn loss_applies_per_direction_of_exchange() {
    // With loss 1.0 nothing arrives but empty_sends stays zero (messages
    // were composed) and drops count both directions.
    let mut p = Probe {
        n: 4,
        action: Action::Exchange,
        received: vec![Vec::new(); 4],
        target_msgs: u32::MAX,
    };
    let cfg = EngineConfig::synchronous(1)
        .with_max_rounds(4)
        .with_loss(1.0);
    let stats = Engine::new(cfg).run(&mut p);
    assert_eq!(stats.messages_delivered, 0);
    assert_eq!(stats.lost, 4 * 2);
    assert_eq!(stats.dedup_dropped, 0);
    assert_eq!(stats.empty_sends, 0);
}

#[test]
fn completion_round_zero_for_pre_complete_nodes() {
    let mut p = Probe {
        n: 4,
        action: Action::Push,
        received: vec![Vec::new(); 4],
        target_msgs: 2,
    };
    let stats = Engine::new(EngineConfig::synchronous(0).with_max_rounds(100)).run(&mut p);
    assert!(stats.completed);
    // Idle nodes 2, 3 complete at time 0.
    assert_eq!(stats.node_completion_rounds[2], Some(0));
    assert_eq!(stats.node_completion_rounds[3], Some(0));
    // The active pair completes at round 2 (one push per round).
    assert_eq!(stats.node_completion_rounds[0], Some(2));
    assert_eq!(stats.node_completion_rounds[1], Some(2));
}
