//! Differential lock for the sharded round loop: [`ShardedEngine`] must
//! produce bit-identical results at every shard count.
//!
//! `num_shards = 1` is the serial reference — the whole round runs on one
//! shard with the exact same per-slot RNG discipline — so "sharded vs
//! serial" reduces to "S shards vs 1 shard". Each lane runs the real
//! pooled algebraic-gossip protocol (the dev-only dependency cycle that
//! also powers `proptest_engine_invariants`) over random connected
//! graphs, both communication models, loss on/off, and the crash wrapper,
//! and asserts:
//!
//! * identical [`RunStats`],
//! * identical per-round observer traces (round, total rank) and their
//!   [`TrajectoryHash`],
//! * the pool-balance invariant `pool_idle == pool_prewarm` at **every**
//!   round boundary — per-shard emit stashes must hand every buffer back
//!   by the end of the round (the sharded analogue of the serial
//!   `crash_pool_audit`),
//! * identical decoded messages on completed runs.
//!
//! The chunked-growth lane additionally pins that the rank-bounded arena
//! is trajectory-identical to the preallocated one under sharding.
//!
//! CI runs this suite with `PROPTEST_CASES=256` under
//! `RAYON_NUM_THREADS ∈ {1, 4}`; the case count honors that env var.

use ag_gf::Gf256;
use ag_graph::builders;
use ag_sim::{CommModel, EngineConfig, RunStats, ShardedEngine, TrajectoryHash};
use algebraic_gossip::{AgConfig, AlgebraicGossip, ArenaGrowth, CrashPlan, Placement, WithCrashes};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

/// One full sharded run; returns stats, the hashed trace, the raw trace,
/// and the decoded check. Asserts pool balance at every round boundary.
fn run_sharded(
    n: usize,
    k: usize,
    comm: CommModel,
    growth: ArenaGrowth,
    crashes: bool,
    cfg: EngineConfig,
    proto_seed: u64,
    shards: usize,
) -> (RunStats, u64, Vec<(u64, u64)>) {
    let mut graph_rng = StdRng::seed_from_u64(proto_seed);
    let graph = builders::erdos_renyi_connected(n, 0.4, &mut graph_rng)
        .unwrap_or_else(|_| builders::cycle(n.max(3)).unwrap());
    let ag_cfg = AgConfig::new(k)
        .with_payload_len(2)
        .with_comm_model(comm)
        .with_placement(Placement::Spread)
        .with_arena_growth(growth);
    let inner = AlgebraicGossip::<Gf256>::new(&graph, &ag_cfg, proto_seed).expect("protocol");
    let prewarm = inner.pool_prewarm();
    // Crash a deterministic fraction at staggered wakeups; survivors must
    // still account for every pooled buffer.
    let plan = if crashes {
        CrashPlan::random_fraction(n, 0.2, 3, proto_seed ^ 0xDEAD)
    } else {
        CrashPlan::explicit(Vec::new())
    };
    let mut proto = WithCrashes::new(inner, plan);
    let mut hash = TrajectoryHash::new();
    let mut trace = Vec::new();
    let stats = ShardedEngine::new(cfg, shards).run_observed(&mut proto, |round, p| {
        assert_eq!(
            p.inner().pool_idle(),
            prewarm,
            "shards = {shards}: pooled buffer leaked by round {round}"
        );
        let rank = p.inner().total_rank() as u64;
        hash.observe(round);
        hash.observe(rank);
        trace.push((round, rank));
    });
    assert_eq!(
        proto.inner().pool_idle(),
        prewarm,
        "shards = {shards}: pool did not end balanced"
    );
    if stats.completed {
        for v in proto.survivors() {
            assert_eq!(
                proto.inner().decoded(v).expect("survivor decodes"),
                proto.inner().generation().messages(),
                "shards = {shards}: node {v} decoded wrong messages"
            );
        }
    }
    (stats, hash.finish(), trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The tentpole lock: every shard count reproduces the 1-shard run
    /// bit-for-bit — stats, trace, hash — over random graphs × both comm
    /// models × loss × crashes.
    #[test]
    fn shard_count_is_invisible(
        seed in any::<u64>(),
        n in 6usize..20,
        k in 2usize..6,
        comm_pick in 0u8..2,
        lossy in any::<bool>(),
        crashes in any::<bool>(),
    ) {
        let comm = if comm_pick == 0 { CommModel::Uniform } else { CommModel::RoundRobin };
        let mut cfg = EngineConfig::synchronous(seed).with_max_rounds(20_000);
        if lossy {
            cfg = cfg.with_loss(0.2);
        }
        let want = run_sharded(n, k, comm, ArenaGrowth::Chunked, crashes, cfg, seed ^ 0xA6, 1);
        for shards in [3usize, 7] {
            let got = run_sharded(n, k, comm, ArenaGrowth::Chunked, crashes, cfg, seed ^ 0xA6, shards);
            prop_assert_eq!(&got.0, &want.0, "stats diverged at {} shards", shards);
            prop_assert_eq!(got.1, want.1, "trajectory hash diverged at {} shards", shards);
            prop_assert_eq!(&got.2, &want.2, "trace diverged at {} shards", shards);
        }
    }

    /// The rank-bounded-arena lane under sharding: chunked growth must be
    /// verdict/rank/trajectory-identical to the preallocated arena (the
    /// allocation pattern is the only difference).
    #[test]
    fn chunked_arena_is_trajectory_identical_under_sharding(
        seed in any::<u64>(),
        n in 6usize..16,
        k in 2usize..6,
        shards in 1usize..5,
    ) {
        let cfg = EngineConfig::synchronous(seed).with_max_rounds(20_000);
        let chunked = run_sharded(
            n, k, CommModel::Uniform, ArenaGrowth::Chunked, false, cfg, seed ^ 0xC4, shards);
        let prealloc = run_sharded(
            n, k, CommModel::Uniform, ArenaGrowth::Preallocated, false, cfg, seed ^ 0xC4, shards);
        prop_assert_eq!(chunked, prealloc);
    }
}
