//! Differential lock for the round-loop rework: the fast [`Engine`] and
//! the frozen pre-refactor [`ReferenceEngine`] must produce bit-identical
//! [`RunStats`] and observer traces for every protocol, graph, time model,
//! action, loss rate and dedup setting.
//!
//! The fast loop replaced per-round allocations with persistent scratch,
//! hash-set dedup with an analytic rule over the intent table, and the
//! O(n) completion sweep with an incomplete-node list — all of which must
//! be *invisible* in the results. This suite is the engine-level analogue
//! of `crates/rlnc/tests/differential_decoder.rs`.

use ag_graph::{builders, ChurnSchedule, Graph, NodeId, ScheduledTopology, Topology};
use ag_sim::reference::ReferenceEngine;
use ag_sim::{
    Action, CommModel, ContactIntent, Engine, EngineConfig, PartnerSelector, Protocol, RunStats,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Epidemic flooding with a configurable action — every engine code path
/// (forward, backward, both, empty sends via uninformed composers) fires.
/// Generic over the topology view so the same protocol drives the static
/// lanes and the dynamic (scheduled-churn) lane.
struct Flood<T: Topology = Graph> {
    topology: T,
    informed: Vec<bool>,
    selector: PartnerSelector,
    action: Action,
}

impl<T: Topology> Flood<T> {
    fn new(topology: T, action: Action, comm: CommModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let selector = PartnerSelector::new(&topology, comm, &mut rng);
        let mut informed = vec![false; topology.n()];
        informed[0] = true;
        Flood {
            topology,
            informed,
            selector,
            action,
        }
    }
}

impl<T: Topology> Protocol for Flood<T> {
    type Msg = ();

    fn num_nodes(&self) -> usize {
        self.topology.n()
    }

    fn on_round_start(&mut self, round: u64) {
        self.topology.advance_to_epoch(round.saturating_sub(1));
    }

    fn on_wakeup(&mut self, node: NodeId, rng: &mut StdRng) -> Option<ContactIntent> {
        let partner = self.selector.next_partner(&self.topology, node, rng)?;
        Some(ContactIntent {
            partner,
            action: self.action,
            tag: 0,
        })
    }

    fn compose(&self, from: NodeId, _to: NodeId, _tag: u32, _rng: &mut StdRng) -> Option<()> {
        self.informed[from].then_some(())
    }

    fn deliver(&mut self, _from: NodeId, to: NodeId, _tag: u32, _msg: ()) {
        self.informed[to] = true;
    }

    fn node_complete(&self, node: NodeId) -> bool {
        self.informed[node]
    }
}

/// Observer trace entry: round number plus a state fingerprint.
type Trace = Vec<(u64, u64)>;

fn flood_fingerprint<T: Topology>(p: &Flood<T>) -> u64 {
    p.informed.iter().map(|&b| u64::from(b)).sum()
}

fn run_both_on<T: Topology + Clone>(
    topology: &T,
    action: Action,
    comm: CommModel,
    cfg: EngineConfig,
    proto_seed: u64,
) -> ((RunStats, Trace), (RunStats, Trace)) {
    let mut fast_proto = Flood::new(topology.clone(), action, comm, proto_seed);
    let mut fast_trace = Trace::new();
    let fast = Engine::new(cfg).run_observed(&mut fast_proto, |r, p| {
        fast_trace.push((r, flood_fingerprint(p)));
    });
    let mut ref_proto = Flood::new(topology.clone(), action, comm, proto_seed);
    let mut ref_trace = Trace::new();
    let slow = ReferenceEngine::new(cfg).run_observed(&mut ref_proto, |r, p| {
        ref_trace.push((r, flood_fingerprint(p)));
    });
    assert_eq!(
        fast_proto.informed, ref_proto.informed,
        "final state diverged"
    );
    assert_eq!(
        fast_proto.topology.epoch(),
        ref_proto.topology.epoch(),
        "engines advanced topologies to different epochs"
    );
    ((fast, fast_trace), (slow, ref_trace))
}

fn run_both(
    graph: &Graph,
    action: Action,
    comm: CommModel,
    cfg: EngineConfig,
    proto_seed: u64,
) -> ((RunStats, Trace), (RunStats, Trace)) {
    run_both_on(graph, action, comm, cfg, proto_seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast and reference engines agree on stats and traces across random
    /// connected graphs, every action, both partner models, both time
    /// models, loss in {0, ~0.3}, dedup on and off.
    #[test]
    fn engines_are_bit_identical(
        seed in any::<u64>(),
        n in 4usize..24,
        p_edge in 0.2f64..0.8,
        action_pick in 0u8..3,
        comm_pick in 0u8..2,
        sync in any::<bool>(),
        lossy in any::<bool>(),
        dedup in any::<bool>(),
    ) {
        let action = match action_pick {
            0 => Action::Push,
            1 => Action::Pull,
            _ => Action::Exchange,
        };
        let comm = if comm_pick == 0 { CommModel::Uniform } else { CommModel::RoundRobin };
        let mut graph_rng = StdRng::seed_from_u64(seed);
        let graph = builders::erdos_renyi_connected(n, p_edge, &mut graph_rng)
            .unwrap_or_else(|_| builders::cycle(n.max(3)).unwrap());
        let mut cfg = if sync {
            EngineConfig::synchronous(seed)
        } else {
            EngineConfig::asynchronous(seed)
        }
        .with_dedup(dedup)
        .with_max_rounds(10_000);
        if lossy {
            cfg = cfg.with_loss(0.3);
        }
        let ((fast, fast_trace), (slow, slow_trace)) =
            run_both(&graph, action, comm, cfg, seed ^ 0xD1FF);
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fast_trace, slow_trace);
    }

    /// The dynamic lane: fast and reference engines must call the
    /// round-start hook at identical round boundaries, so a protocol over
    /// a `ScheduledTopology` sees the same epoch sequence — and therefore
    /// the same neighbors, messages, stats and traces — under both loops.
    /// Runs every churn family, both time models, both partner models,
    /// loss on and off. Completion is *not* asserted: churn may legally
    /// disconnect the graph for the whole budget.
    #[test]
    fn dynamic_engines_are_bit_identical(
        seed in any::<u64>(),
        n in 4usize..20,
        p_edge in 0.3f64..0.8,
        schedule_pick in 0u8..4,
        comm_pick in 0u8..2,
        sync in any::<bool>(),
        lossy in any::<bool>(),
    ) {
        let comm = if comm_pick == 0 { CommModel::Uniform } else { CommModel::RoundRobin };
        let mut graph_rng = StdRng::seed_from_u64(seed);
        let graph = builders::erdos_renyi_connected(n, p_edge, &mut graph_rng)
            .unwrap_or_else(|_| builders::cycle(n.max(3)).unwrap());
        let schedule = match schedule_pick {
            0 => ChurnSchedule::rewire(0.3, seed),
            1 => ChurnSchedule::Flip { count: 2, seed },
            2 => {
                let edge = graph.edges().next().expect("connected graph has edges");
                ChurnSchedule::bridge_cut(edge, 2, 2)
            }
            _ => ChurnSchedule::partition_heal(graph.n() / 2, 2, 2),
        };
        let topo = ScheduledTopology::new(&graph, schedule);
        let mut cfg = if sync {
            EngineConfig::synchronous(seed)
        } else {
            EngineConfig::asynchronous(seed)
        }
        .with_max_rounds(2_000);
        if lossy {
            cfg = cfg.with_loss(0.3);
        }
        let ((fast, fast_trace), (slow, slow_trace)) =
            run_both_on(&topo, Action::Exchange, comm, cfg, seed ^ 0xD74A);
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fast_trace, slow_trace);
    }
}

/// The adversarial fixed case: a barbell whose bridge is cut 3 epochs out
/// of 4. Both engines must agree round for round, and the run must
/// actually exercise the cut (flooding crosses only during up windows).
#[test]
fn bridge_cut_barbell_matches_reference() {
    let graph = builders::barbell(12).expect("barbell");
    let bridge = (5, 6);
    for seed in 0..20u64 {
        let topo = ScheduledTopology::new(&graph, ChurnSchedule::bridge_cut(bridge, 1, 3));
        let cfg = EngineConfig::synchronous(seed).with_max_rounds(5_000);
        let ((fast, fast_trace), (slow, slow_trace)) =
            run_both_on(&topo, Action::Exchange, CommModel::Uniform, cfg, seed);
        assert!(fast.completed, "flooding must finish once the bridge is up");
        assert_eq!(fast, slow, "stats diverged at seed {seed}");
        assert_eq!(fast_trace, slow_trace, "traces diverged at seed {seed}");
    }
}

/// The dedup-heavy worst case: EXCHANGE on the complete graph makes
/// mutual contacts (and hence duplicate `(from, to)` pairs) common, so the
/// analytic dedup rule is exercised against the reference hash set in
/// volume and in both first-wins orientations (`u < v` and `v < u`).
#[test]
fn dedup_storm_matches_reference() {
    let graph = builders::complete(12).expect("complete");
    let mut total_dedup_drops = 0;
    for seed in 0..40u64 {
        let cfg = EngineConfig::synchronous(seed).with_max_rounds(10_000);
        let ((fast, fast_trace), (slow, slow_trace)) =
            run_both(&graph, Action::Exchange, CommModel::Uniform, cfg, seed);
        total_dedup_drops += fast.dedup_dropped;
        assert_eq!(fast, slow, "stats diverged at seed {seed}");
        assert_eq!(fast_trace, slow_trace, "traces diverged at seed {seed}");
    }
    assert!(
        total_dedup_drops > 0,
        "40 EXCHANGE runs on K12 must hit mutual contacts"
    );
}

/// Mid-round asynchronous completions: the final-observation fix must
/// behave identically in both engines (the reference got the same fix so
/// the perf comparison isolates loop structure).
#[test]
fn async_final_observation_matches_reference() {
    let graph = builders::cycle(7).expect("cycle");
    for seed in 0..40u64 {
        let cfg = EngineConfig::asynchronous(seed).with_max_rounds(10_000);
        let ((fast, fast_trace), (slow, slow_trace)) =
            run_both(&graph, Action::Exchange, CommModel::Uniform, cfg, seed);
        assert!(fast.completed);
        assert_eq!(fast, slow, "stats diverged at seed {seed}");
        assert_eq!(fast_trace, slow_trace, "traces diverged at seed {seed}");
        assert_eq!(fast_trace.last().map(|&(r, _)| r), Some(fast.rounds));
    }
}
