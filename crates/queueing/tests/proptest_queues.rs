//! Property-based tests of the queueing systems' structural invariants.

use ag_graph::SpanningTree;
use ag_queueing::{level_line_of, LineSystem, TreeSystem};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random parent-pointer tree on `n` nodes (node i's parent < i).
fn random_tree(n: usize, bits: u64) -> SpanningTree {
    let parents = (0..n)
        .map(|v| {
            if v == 0 {
                None
            } else {
                // Deterministic pseudo-random parent among earlier nodes.
                let h = bits
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(v as u64 * 0x85EB_CA6B);
                Some((h as usize) % v)
            }
        })
        .collect();
    SpanningTree::from_parents(0, parents).expect("parent < child index is acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drain time is zero iff there are no customers, positive otherwise,
    /// and total work conservation holds: every customer leaves exactly
    /// once (implied by termination of `drain_time`).
    #[test]
    fn drain_time_sign(seed in any::<u64>(), n in 2usize..12, k in 0usize..10) {
        let tree = random_tree(n, seed);
        let mut placement = vec![0usize; n];
        for i in 0..k {
            placement[i % n] += 1;
        }
        let sys = TreeSystem::new(&tree, placement, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = sys.drain_time(&mut rng);
        if k == 0 {
            prop_assert_eq!(t, 0.0);
        } else {
            prop_assert!(t > 0.0);
        }
    }

    /// The level-line reduction preserves customer count and never has
    /// more queues than the tree has levels.
    #[test]
    fn level_line_preserves_mass(seed in any::<u64>(), n in 2usize..14, k in 1usize..12) {
        let tree = random_tree(n, seed);
        let mut placement = vec![0usize; n];
        for i in 0..k {
            placement[(seed as usize + i) % n] += 1;
        }
        let line = level_line_of(&tree, &placement, 1.0);
        prop_assert_eq!(line.total_customers(), k);
        prop_assert_eq!(line.lmax(), tree.depth() as usize + 1);
    }

    /// Mean drain time of the all-at-tail line grows monotonically in
    /// both k and lmax (sampled coarsely).
    #[test]
    fn tail_line_monotone(seed in any::<u64>(), lmax in 1usize..6, k in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = |l: usize, c: usize, rng: &mut StdRng| {
            let sys = LineSystem::all_at_tail(l, c, 1.0);
            sys.drain_times(300, rng).iter().sum::<f64>() / 300.0
        };
        let base = mean(lmax, k, &mut rng);
        let more_k = mean(lmax, k + 8, &mut rng);
        let deeper = mean(lmax + 6, k, &mut rng);
        prop_assert!(more_k > base, "adding 8 customers did not slow draining");
        prop_assert!(deeper > base, "adding 6 queues did not slow draining");
    }

    /// Doubling the service rate halves the mean drain time (within
    /// sampling noise).
    #[test]
    fn rate_inverse_scaling(seed in any::<u64>(), k in 4usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = |mu: f64, rng: &mut StdRng| {
            let sys = LineSystem::all_at_tail(3, k, mu);
            sys.drain_times(600, rng).iter().sum::<f64>() / 600.0
        };
        let slow = mean(1.0, &mut rng);
        let fast = mean(2.0, &mut rng);
        let ratio = slow / fast;
        prop_assert!((1.6..2.5).contains(&ratio), "rate doubling gave {ratio:.2}x");
    }
}
