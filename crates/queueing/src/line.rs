//! `Q^line` and its modified placements (Definitions 6–8 of the paper).

use ag_graph::SpanningTree;
use rand::Rng;

use crate::tree::TreeSystem;

/// A line of M/M/1 queues `Z^lmax → … → Z^1`, customers draining out of
/// queue `Z^1` (the paper's Definitions 6–8).
///
/// Internally a [`TreeSystem`] over a path rooted at the exit, so the same
/// exact CTMC simulation applies. Index 0 is the exit queue `Z^1`; index
/// `lmax − 1` is the farthest queue `Z^lmax`.
///
/// # Examples
///
/// ```
/// use ag_queueing::LineSystem;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// // Q̂^line: every customer starts at the farthest queue.
/// let hat = LineSystem::all_at_tail(6, 20, 1.0);
/// assert_eq!(hat.lmax(), 6);
/// assert!(hat.drain_time(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LineSystem {
    inner: TreeSystem,
    lmax: usize,
    placement: Vec<usize>,
    mu: f64,
}

impl LineSystem {
    /// A line of `lmax` queues with an explicit placement
    /// (`placement[i]` = customers initially in queue `i`, exit = 0).
    ///
    /// # Panics
    ///
    /// Panics if `lmax == 0`, `placement.len() != lmax`, or `mu <= 0`.
    #[must_use]
    pub fn new(lmax: usize, placement: Vec<usize>, mu: f64) -> Self {
        assert!(lmax > 0, "need at least one queue");
        assert_eq!(placement.len(), lmax, "placement length must equal lmax");
        // Path rooted at node 0 (the exit): parent(i) = i - 1.
        let parents = (0..lmax)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let tree = SpanningTree::from_parents(0, parents).expect("a path is a tree");
        let inner = TreeSystem::new(&tree, placement.clone(), mu)
            // ag-lint: allow(panic-policy) — constructor contract: the
            // asserts above already validated lmax/placement, so a
            // TreeSystem rejection here is a caller bug, not an input.
            .unwrap_or_else(|e| panic!("invalid line system: {e}"));
        LineSystem {
            inner,
            lmax,
            placement,
            mu,
        }
    }

    /// `Q̂^line` (Definition 8): all `k` customers start at the farthest
    /// queue — the stochastically *slowest* placement (Corollary 1).
    ///
    /// # Panics
    ///
    /// Panics if `lmax == 0` or `mu <= 0`.
    #[must_use]
    pub fn all_at_tail(lmax: usize, k: usize, mu: f64) -> Self {
        let mut placement = vec![0; lmax];
        placement[lmax - 1] = k;
        LineSystem::new(lmax, placement, mu)
    }

    /// `Q̀^line` (Definition 7): this system's placement with one customer
    /// moved one queue *backward* (from queue `m` to queue `m + 1`).
    ///
    /// Returns `None` when queue `m` is empty or `m` is the last queue.
    #[must_use]
    pub fn push_one_back(&self, m: usize) -> Option<Self> {
        if m + 1 >= self.lmax || self.placement[m] == 0 {
            return None;
        }
        let mut p = self.placement.clone();
        p[m] -= 1;
        p[m + 1] += 1;
        Some(LineSystem::new(self.lmax, p, self.mu))
    }

    /// Number of queues.
    #[must_use]
    pub fn lmax(&self) -> usize {
        self.lmax
    }

    /// Total customers.
    #[must_use]
    pub fn total_customers(&self) -> usize {
        self.placement.iter().sum()
    }

    /// Initial placement (index 0 = exit queue).
    #[must_use]
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// One simulated drain time.
    #[must_use]
    pub fn drain_time<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.drain_time(rng)
    }

    /// Many independent drain samples.
    #[must_use]
    pub fn drain_times<R: Rng + ?Sized>(&self, trials: usize, rng: &mut R) -> Vec<f64> {
        self.inner.drain_times(trials, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn tail_placement_shape() {
        let s = LineSystem::all_at_tail(5, 7, 1.0);
        assert_eq!(s.placement(), &[0, 0, 0, 0, 7]);
        assert_eq!(s.total_customers(), 7);
    }

    #[test]
    fn single_queue_line_is_erlang() {
        let s = LineSystem::all_at_tail(1, 5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let m = mean(&s.drain_times(10_000, &mut rng));
        assert!((m - 5.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn push_one_back_moves_a_customer() {
        let s = LineSystem::new(4, vec![2, 1, 0, 0], 1.0);
        let moved = s.push_one_back(0).unwrap();
        assert_eq!(moved.placement(), &[1, 2, 0, 0]);
        assert!(s.push_one_back(2).is_none(), "queue 2 is empty");
        assert!(s.push_one_back(3).is_none(), "last queue cannot move back");
    }

    #[test]
    fn lemma6_backward_move_is_slower_on_average() {
        // Lemma 6: moving one customer backward stochastically delays
        // every departure. Check the means with paired sampling.
        let base = LineSystem::new(3, vec![5, 0, 0], 1.0);
        let moved = base.push_one_back(0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mb = mean(&base.drain_times(6_000, &mut rng));
        let mm = mean(&moved.drain_times(6_000, &mut rng));
        assert!(
            mm > mb,
            "moved-back system should be slower: base {mb}, moved {mm}"
        );
    }

    #[test]
    fn corollary1_tail_is_slowest_placement() {
        // Among placements of 6 customers in 4 queues, all-at-tail has the
        // largest mean drain time.
        let mut rng = StdRng::seed_from_u64(3);
        let tail = LineSystem::all_at_tail(4, 6, 1.0);
        let spread = LineSystem::new(4, vec![2, 2, 1, 1], 1.0);
        let front = LineSystem::new(4, vec![6, 0, 0, 0], 1.0);
        let mt = mean(&tail.drain_times(4_000, &mut rng));
        let ms = mean(&spread.drain_times(4_000, &mut rng));
        let mf = mean(&front.drain_times(4_000, &mut rng));
        assert!(mt > ms && ms > mf, "tail {mt} > spread {ms} > front {mf}");
    }

    #[test]
    #[should_panic(expected = "placement length")]
    fn bad_placement_length_panics() {
        let _ = LineSystem::new(3, vec![1], 1.0);
    }
}
