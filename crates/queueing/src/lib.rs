//! Queueing-network simulator for the paper's proof technique.
//!
//! Theorem 2 of Avin et al. bounds the drain time of a *feed-forward tree of
//! M/M/1 queues*: `n` identical exponential servers arranged in a tree,
//! `k` customers placed arbitrarily, no external arrivals; every serviced
//! customer moves to its parent queue and leaves the system at the root.
//! The proof (Figure 1) walks a chain of stochastically-dominated systems:
//!
//! ```text
//! t(Q^tree_n)  ⪯  t(Q̂^tree_n)  ≈  t(Q^line_lmax)  ⪯  t(Q̀^line)  ⪯  t(Q̂^line_lmax)
//!              = O((k + l_max + log n)/μ)
//! ```
//!
//! This crate simulates every system in that chain exactly (the tree/line
//! networks are continuous-time Markov chains because exponential service is
//! memoryless) plus the Jackson-equilibrium construction of Lemma 7, and
//! provides an empirical stochastic-dominance checker used by the `fig_queue`
//! experiment.
//!
//! # Examples
//!
//! ```
//! use ag_queueing::{LineSystem, TreeSystem};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // 4 queues in a line, 10 customers at the farthest queue, mu = 1.
//! let t = LineSystem::all_at_tail(4, 10, 1.0).drain_time(&mut rng);
//! assert!(t > 0.0);
//! ```

mod dominance;
mod jackson;
mod line;
mod reduce;
mod tree;

pub use dominance::{dominance_violation, empirical_cdf_points, ks_critical_5pct};
pub use jackson::JacksonLine;
pub use line::LineSystem;
pub use reduce::level_line_of;
pub use tree::TreeSystem;

/// Draws an exponential random variable with the given `rate`.
///
/// # Panics
///
/// Panics if `rate <= 0`.
pub(crate) fn sample_exp<R: rand::Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    // Inverse CDF; 1 - U in (0, 1] avoids ln(0).
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_sample_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let rate = 2.5;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_exp(rate, &mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.02,
            "sample mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_exp(0.0, &mut rng);
    }
}
