//! The Lemma 7 construction: `Q̂^line` with equilibrium (Jackson) arrivals.
//!
//! To bound `t(Q̂^line)` the paper takes all `k` customers *out* of the
//! system and feeds them back through the farthest queue as a Poisson
//! process with rate `λ = μ/2` (so every queue has load `ρ = 1/2`), and
//! seeds each queue with dummy customers drawn from the stationary
//! geometric distribution. Jackson's theorem then makes every queue an
//! independent equilibrium M/M/1, and Lemma 8 gives each real customer an
//! `Exp(μ − λ)` sojourn per queue. The stopping time becomes
//! `t1 + t2 = O((k + l_max + log n)/μ)` w.h.p.

use rand::Rng;

use crate::sample_exp;

/// The open-network variant of the line system used in Lemma 7.
///
/// Simulates `lmax` FIFO exponential servers in series. `k` *real*
/// customers arrive at the last queue as a Poisson(λ) stream; each queue
/// initially holds `Geom(ρ)` dummy customers (the M/M/1 stationary law).
/// The measured stopping time is the system exit of the last real customer.
///
/// # Examples
///
/// ```
/// use ag_queueing::JacksonLine;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let sys = JacksonLine::new(5, 10, 1.0);
/// let t = sys.stopping_time(&mut rng);
/// assert!(t > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct JacksonLine {
    lmax: usize,
    k: usize,
    mu: f64,
}

impl JacksonLine {
    /// Builds the construction with `λ = μ/2` (the paper's choice).
    ///
    /// # Panics
    ///
    /// Panics if `lmax == 0` or `mu <= 0`.
    #[must_use]
    pub fn new(lmax: usize, k: usize, mu: f64) -> Self {
        assert!(lmax > 0, "need at least one queue");
        assert!(mu > 0.0, "service rate must be positive");
        JacksonLine { lmax, k, mu }
    }

    /// The arrival rate `λ = μ/2`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.mu / 2.0
    }

    /// Samples the stationary queue length `Geom(ρ)` with `ρ = 1/2`:
    /// `P(L = j) = (1 − ρ)ρ^j`.
    fn stationary_len<R: Rng + ?Sized>(rng: &mut R) -> usize {
        let mut l = 0;
        while rng.gen_bool(0.5) {
            l += 1;
        }
        l
    }

    /// One simulated stopping time: when the `k`-th real customer exits.
    ///
    /// Event-driven FIFO simulation over the `lmax` queues. Dummies are
    /// indistinguishable from real customers to the servers (FIFO order),
    /// but only real exits count toward the stopping condition.
    #[must_use]
    pub fn stopping_time<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        // Queue contents: false = dummy, true = real. Queue 0 is the exit.
        let mut queues: Vec<std::collections::VecDeque<bool>> = (0..self.lmax)
            .map(|_| {
                (0..Self::stationary_len(rng))
                    .map(|_| false)
                    .collect::<std::collections::VecDeque<bool>>()
            })
            .collect();
        // Pre-draw the k Poisson(λ) arrival times into the last queue.
        let mut arrivals = Vec::with_capacity(self.k);
        let mut t_arr = 0.0;
        for _ in 0..self.k {
            t_arr += sample_exp(self.lambda(), rng);
            arrivals.push(t_arr);
        }
        let mut next_arrival = 0usize;
        // Per-queue next completion time (None = idle).
        let mut completion: Vec<Option<f64>> = vec![None; self.lmax];
        let mut now = 0.0;
        for (q, queue) in queues.iter().enumerate() {
            if !queue.is_empty() {
                completion[q] = Some(now + sample_exp(self.mu, rng));
            }
        }
        let mut real_exits = 0usize;
        loop {
            // Next event: earliest completion or next arrival.
            let mut best: Option<(f64, usize)> = None; // (time, queue) ; usize::MAX = arrival
            for (q, c) in completion.iter().enumerate() {
                if let Some(tc) = c {
                    if best.is_none_or(|(bt, _)| *tc < bt) {
                        best = Some((*tc, q));
                    }
                }
            }
            if next_arrival < self.k {
                let ta = arrivals[next_arrival];
                if best.is_none_or(|(bt, _)| ta < bt) {
                    best = Some((ta, usize::MAX));
                }
            }
            let (t_event, which) =
                best.expect("either a busy server or a pending arrival must exist");
            now = t_event;
            if which == usize::MAX {
                // Real arrival at the farthest queue.
                let q = self.lmax - 1;
                queues[q].push_back(true);
                next_arrival += 1;
                if completion[q].is_none() {
                    completion[q] = Some(now + sample_exp(self.mu, rng));
                }
            } else {
                let q = which;
                let customer = queues[q].pop_front().expect("busy queue is nonempty");
                completion[q] = if queues[q].is_empty() {
                    None
                } else {
                    Some(now + sample_exp(self.mu, rng))
                };
                if q == 0 {
                    if customer {
                        real_exits += 1;
                        if real_exits == self.k {
                            return now;
                        }
                    }
                } else {
                    let dst = q - 1;
                    queues[dst].push_back(customer);
                    if completion[dst].is_none() {
                        completion[dst] = Some(now + sample_exp(self.mu, rng));
                    }
                }
            }
        }
    }

    /// The paper's explicit w.h.p. bound from Lemma 7:
    /// `(4k + 4·l_max + 16·ln n) / μ`.
    #[must_use]
    pub fn lemma7_bound(&self, n: usize) -> f64 {
        (4.0 * self.k as f64 + 4.0 * self.lmax as f64 + 16.0 * (n as f64).ln()) / self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn zero_customers_zero_time() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(JacksonLine::new(3, 0, 1.0).stopping_time(&mut rng), 0.0);
    }

    #[test]
    fn lemma7_bound_holds_empirically() {
        // The bound holds w.p. >= 1 - 2/n^2; with n = 32 that's ~0.998.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 32;
        let sys = JacksonLine::new(8, 24, 1.0);
        let bound = sys.lemma7_bound(n);
        let trials = 300;
        let violations = (0..trials)
            .filter(|_| sys.stopping_time(&mut rng) > bound)
            .count();
        assert!(
            violations <= 3,
            "{violations}/{trials} runs exceeded the Lemma 7 bound {bound}"
        );
    }

    #[test]
    fn mean_grows_linearly_in_k() {
        let mut rng = StdRng::seed_from_u64(3);
        let t1 = mean(
            &(0..400)
                .map(|_| JacksonLine::new(4, 10, 1.0).stopping_time(&mut rng))
                .collect::<Vec<_>>(),
        );
        let t4 = mean(
            &(0..400)
                .map(|_| JacksonLine::new(4, 40, 1.0).stopping_time(&mut rng))
                .collect::<Vec<_>>(),
        );
        let ratio = t4 / t1;
        assert!(
            (2.0..7.0).contains(&ratio),
            "4x customers scaled time by {ratio}"
        );
    }

    #[test]
    fn lemma8_late_customer_sojourn_is_exp_mu_minus_lambda() {
        // Lemma 8: a customer arriving at an equilibrium M/M/1 with
        // rho = 1/2 sojourns Exp(mu - lambda) = Exp(0.5), mean 2. The k-th
        // customer (large k) sees the stationary queue, so the stopping
        // time is ~ (k-th arrival ~ Erlang(k, 0.5), mean 2k) + (sojourn,
        // mean 2). (The *first* customer is special: conditioning on "no
        // arrivals before me" makes its queue sub-stationary — so we test
        // the tail customer, which is what the proof actually uses.)
        let mut rng = StdRng::seed_from_u64(4);
        let k = 50;
        let samples: Vec<f64> = (0..4_000)
            .map(|_| JacksonLine::new(1, k, 1.0).stopping_time(&mut rng))
            .collect();
        let m = mean(&samples);
        let want = 2.0 * k as f64 + 2.0;
        assert!(
            (m - want).abs() < 1.5,
            "mean stopping time was {m}, want ~{want}"
        );
    }
}
