//! Empirical stochastic-dominance checks.
//!
//! The paper's Theorem 2 chain rests on stochastic ordering (Definition 4):
//! `X ⪯ Y` iff `Pr(X ≤ t) ≥ Pr(Y ≤ t)` for all `t`. For simulated systems
//! we verify the *empirical* version: sample both, build empirical CDFs,
//! and report the worst violation `max_t [ F̂_Y(t) − F̂_X(t) ]` — which
//! should be statistically indistinguishable from ≤ 0 when `X ⪯ Y`
//! (a one-sided two-sample Kolmogorov–Smirnov statistic).

/// Evaluation points and empirical CDF values for a sample.
///
/// Returns the sorted sample; `F̂(sample[i]) = (i + 1) / len`.
#[must_use]
pub fn empirical_cdf_points(samples: &[f64]) -> Vec<f64> {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    s
}

/// The one-sided KS statistic `sup_t [ F̂_y(t) − F̂_x(t) ]`.
///
/// When the hypothesis `X ⪯ Y` holds this converges to ≤ 0 in probability;
/// values above `~1.36·√((n+m)/(n·m))` (the 5% KS critical value) are
/// evidence *against* dominance.
///
/// # Panics
///
/// Panics if either sample is empty.
#[must_use]
pub fn dominance_violation(x: &[f64], y: &[f64]) -> f64 {
    assert!(!x.is_empty() && !y.is_empty(), "samples must be non-empty");
    let xs = empirical_cdf_points(x);
    let ys = empirical_cdf_points(y);
    // Sweep the merged support; at each point compute F_y - F_x.
    let mut worst = f64::NEG_INFINITY;
    let mut xi = 0usize;
    let mut yi = 0usize;
    let nx = xs.len() as f64;
    let ny = ys.len() as f64;
    while xi < xs.len() || yi < ys.len() {
        let t = match (xs.get(xi), ys.get(yi)) {
            (Some(&a), Some(&b)) => a.min(b),
            (Some(&a), None) => a,
            (None, Some(&b)) => b,
            (None, None) => break,
        };
        while xi < xs.len() && xs[xi] <= t {
            xi += 1;
        }
        while yi < ys.len() && ys[yi] <= t {
            yi += 1;
        }
        let fx = xi as f64 / nx;
        let fy = yi as f64 / ny;
        worst = worst.max(fy - fx);
    }
    worst
}

/// The 5% one-sided KS critical value for sample sizes `n` and `m`.
#[must_use]
pub fn ks_critical_5pct(n: usize, m: usize) -> f64 {
    1.36 * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_exp, LineSystem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_points_sorted() {
        let pts = empirical_cdf_points(&[3.0, 1.0, 2.0]);
        assert_eq!(pts, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identical_distributions_have_small_violation() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<f64> = (0..2000).map(|_| sample_exp(1.0, &mut rng)).collect();
        let b: Vec<f64> = (0..2000).map(|_| sample_exp(1.0, &mut rng)).collect();
        let v = dominance_violation(&a, &b);
        assert!(v < ks_critical_5pct(2000, 2000), "violation {v}");
    }

    #[test]
    fn clearly_dominated_pair_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        // X ~ Exp(2) is stochastically smaller than Y ~ Exp(1)... X <= Y.
        let x: Vec<f64> = (0..2000).map(|_| sample_exp(2.0, &mut rng)).collect();
        let y: Vec<f64> = (0..2000).map(|_| sample_exp(1.0, &mut rng)).collect();
        let ok = dominance_violation(&x, &y);
        assert!(ok < ks_critical_5pct(2000, 2000));
        // The reversed claim Y <= X must be loudly violated.
        let bad = dominance_violation(&y, &x);
        assert!(bad > 0.15, "reversed dominance violation only {bad}");
    }

    #[test]
    fn corollary1_dominance_line_vs_tail() {
        // t(Q^line with spread placement) <= t(Q̂^line all-at-tail).
        let mut rng = StdRng::seed_from_u64(3);
        let spread = LineSystem::new(5, vec![2, 2, 2, 2, 2], 1.0);
        let tail = LineSystem::all_at_tail(5, 10, 1.0);
        let x = spread.drain_times(1500, &mut rng);
        let y = tail.drain_times(1500, &mut rng);
        let v = dominance_violation(&x, &y);
        assert!(
            v < ks_critical_5pct(1500, 1500),
            "Corollary 1 dominance violated by {v}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = dominance_violation(&[], &[1.0]);
    }
}
