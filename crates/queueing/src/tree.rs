//! `Q^tree_n`: the feed-forward tree of M/M/1 queues (Theorem 2).

use ag_graph::{NodeId, SpanningTree};
use rand::Rng;

use crate::sample_exp;

/// A tree of identical exponential servers with customers draining to the
/// root.
///
/// Because every service time is `Exp(μ)` and servers are work-conserving,
/// the system is a continuous-time Markov chain: when `b` servers are busy
/// the next completion happens after `Exp(b·μ)` and belongs to each busy
/// server with probability `1/b`. The simulation is therefore exact, not a
/// discretization.
///
/// # Examples
///
/// ```
/// use ag_graph::SpanningTree;
/// use ag_queueing::TreeSystem;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Root 0 with children 1, 2; one customer at each leaf.
/// let tree = SpanningTree::from_parents(0, vec![None, Some(0), Some(0)]).unwrap();
/// let sys = TreeSystem::new(&tree, vec![0, 1, 1], 1.0).unwrap();
/// let mut rng = StdRng::seed_from_u64(9);
/// assert!(sys.drain_time(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TreeSystem {
    /// Parent of each node (`None` for the root).
    parent: Vec<Option<NodeId>>,
    /// Initial customers per node.
    initial: Vec<usize>,
    /// Service rate μ shared by every server.
    mu: f64,
}

impl TreeSystem {
    /// Builds the system from a spanning tree, an initial placement
    /// (customers per node) and a service rate.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if the placement length differs from the
    /// tree size or `mu <= 0`.
    pub fn new(tree: &SpanningTree, initial: Vec<usize>, mu: f64) -> Result<Self, String> {
        if initial.len() != tree.n() {
            return Err(format!(
                "placement has {} entries for a tree of {} nodes",
                initial.len(),
                tree.n()
            ));
        }
        if mu <= 0.0 {
            return Err(format!("service rate must be positive, got {mu}"));
        }
        Ok(TreeSystem {
            parent: tree.parents().to_vec(),
            initial,
            mu,
        })
    }

    /// Total customers `k` in the system.
    #[must_use]
    pub fn total_customers(&self) -> usize {
        self.initial.iter().sum()
    }

    /// Number of queues `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Simulates one drain: the time until the last customer leaves the
    /// system via the root, in the same time unit as `1/μ`.
    #[must_use]
    pub fn drain_time<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut queue_len = self.initial.clone();
        let mut remaining: usize = queue_len.iter().sum();
        if remaining == 0 {
            return 0.0;
        }
        // Indices of currently busy servers (queue_len > 0), kept as a
        // vector for O(1) uniform choice; membership tracked via position.
        let n = self.parent.len();
        let mut busy: Vec<NodeId> = Vec::with_capacity(n);
        let mut pos: Vec<Option<usize>> = vec![None; n];
        for (v, &q) in queue_len.iter().enumerate() {
            if q > 0 {
                pos[v] = Some(busy.len());
                busy.push(v);
            }
        }
        let mut t = 0.0;
        while remaining > 0 {
            debug_assert!(!busy.is_empty());
            // Next completion: Exp(b * mu); uniformly a busy server.
            let b = busy.len();
            t += sample_exp(b as f64 * self.mu, rng);
            let i = rng.gen_range(0..b);
            let v = busy[i];
            queue_len[v] -= 1;
            if queue_len[v] == 0 {
                // Swap-remove v from the busy set.
                let last = *busy.last().expect("nonempty");
                busy.swap_remove(i);
                pos[last] = if last == v { None } else { Some(i) };
                pos[v] = None;
                if last != v && i < busy.len() {
                    pos[busy[i]] = Some(i);
                }
            }
            match self.parent[v] {
                Some(p) => {
                    queue_len[p] += 1;
                    if pos[p].is_none() {
                        pos[p] = Some(busy.len());
                        busy.push(p);
                    }
                }
                None => {
                    // Serviced at the root: leaves the system.
                    remaining -= 1;
                }
            }
        }
        t
    }

    /// Convenience: many independent drain samples.
    #[must_use]
    pub fn drain_times<R: Rng + ?Sized>(&self, trials: usize, rng: &mut R) -> Vec<f64> {
        (0..trials).map(|_| self.drain_time(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn empty_system_drains_instantly() {
        let tree = SpanningTree::from_parents(0, vec![None, Some(0)]).unwrap();
        let sys = TreeSystem::new(&tree, vec![0, 0], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sys.drain_time(&mut rng), 0.0);
    }

    #[test]
    fn single_queue_single_customer_is_one_service() {
        // One node, one customer: drain time ~ Exp(mu), mean 1/mu.
        let tree = SpanningTree::from_parents(0, vec![None]).unwrap();
        let sys = TreeSystem::new(&tree, vec![1], 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = mean(&sys.drain_times(20_000, &mut rng));
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn k_customers_at_root_take_erlang_time() {
        // k customers at the root: sum of k Exp(mu) services -> mean k/mu.
        let tree = SpanningTree::from_parents(0, vec![None]).unwrap();
        let k = 12;
        let sys = TreeSystem::new(&tree, vec![k], 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let m = mean(&sys.drain_times(5_000, &mut rng));
        assert!((m - k as f64 / 2.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let tree = SpanningTree::from_parents(0, vec![None, Some(0)]).unwrap();
        assert!(TreeSystem::new(&tree, vec![1], 1.0).is_err());
        assert!(TreeSystem::new(&tree, vec![1, 0], 0.0).is_err());
        assert!(TreeSystem::new(&tree, vec![1, 0], -1.0).is_err());
    }

    #[test]
    fn theorem2_scaling_in_k_is_roughly_linear() {
        // Fix the tree; drain time should grow ~linearly with k.
        let g = builders::binary_tree(15).unwrap();
        let tree = g.bfs_tree(0).into_spanning_tree();
        let mut rng = StdRng::seed_from_u64(3);
        let time_for_k = |k: usize, rng: &mut StdRng| {
            let mut placement = vec![0usize; 15];
            for i in 0..k {
                placement[1 + (i % 14)] += 1; // spread over non-root nodes
            }
            let sys = TreeSystem::new(&tree, placement, 1.0).unwrap();
            mean(&sys.drain_times(400, rng))
        };
        let t10 = time_for_k(10, &mut rng);
        let t40 = time_for_k(40, &mut rng);
        let ratio = t40 / t10;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4x customers changed time by {ratio}x"
        );
    }

    #[test]
    fn deeper_trees_take_longer() {
        // Same k, same mu: a path of depth 20 beats... is slower than a
        // star of depth 1.
        let star = builders::star(21).unwrap().bfs_tree(0).into_spanning_tree();
        let path = builders::path(21).unwrap().bfs_tree(0).into_spanning_tree();
        let mut placement_star = vec![0usize; 21];
        let mut placement_path = vec![0usize; 21];
        placement_star[20] = 10;
        placement_path[20] = 10; // farthest node in the path
        let mut rng = StdRng::seed_from_u64(4);
        let t_star = mean(
            &TreeSystem::new(&star, placement_star, 1.0)
                .unwrap()
                .drain_times(400, &mut rng),
        );
        let t_path = mean(
            &TreeSystem::new(&path, placement_path, 1.0)
                .unwrap()
                .drain_times(400, &mut rng),
        );
        assert!(
            t_path > t_star + 5.0,
            "path {t_path} should be much slower than star {t_star}"
        );
    }

    #[test]
    fn rate_scales_time_inversely() {
        let tree = SpanningTree::from_parents(0, vec![None, Some(0), Some(1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let slow = TreeSystem::new(&tree, vec![0, 0, 5], 1.0).unwrap();
        let fast = TreeSystem::new(&tree, vec![0, 0, 5], 10.0).unwrap();
        let ms = mean(&slow.drain_times(2_000, &mut rng));
        let mf = mean(&fast.drain_times(2_000, &mut rng));
        let ratio = ms / mf;
        assert!((8.0..12.5).contains(&ratio), "rate-10 speedup was {ratio}");
    }
}
