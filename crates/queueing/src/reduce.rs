//! The tree→line reduction used throughout the Theorem 2 proof.
//!
//! `Q̂^tree` (Definition 5) serializes each tree level — only one server
//! per level is ON at a time — which makes node identity within a level
//! irrelevant; Lemma 5 then identifies it with the line system whose
//! queue `l` holds the level-`l` customers. [`level_line_of`] performs
//! exactly that identification, so experiments construct the comparison
//! systems consistently.

use ag_graph::SpanningTree;

use crate::line::LineSystem;

/// Builds the `Q^line_{l_max}` system that the paper's Lemmas 4–5 compare a
/// tree system against: queue `l` starts with all customers placed at
/// depth-`l` nodes of the tree.
///
/// # Panics
///
/// Panics if `placement.len() != tree.n()` or `mu <= 0`.
#[must_use]
pub fn level_line_of(tree: &SpanningTree, placement: &[usize], mu: f64) -> LineSystem {
    assert_eq!(
        placement.len(),
        tree.n(),
        "placement must cover every tree node"
    );
    let lmax = tree.depth() as usize + 1;
    let mut by_level = vec![0usize; lmax];
    for (v, &c) in placement.iter().enumerate() {
        by_level[tree.node_depth(v) as usize] += c;
    }
    LineSystem::new(lmax, by_level, mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::{dominance_violation, ks_critical_5pct};
    use crate::tree::TreeSystem;
    use ag_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn levels_aggregate_correctly() {
        // Star rooted at 0: root level 0, leaves level 1.
        let tree = SpanningTree::from_parents(0, vec![None, Some(0), Some(0), Some(0)]).unwrap();
        let line = level_line_of(&tree, &[2, 1, 1, 1], 1.0);
        assert_eq!(line.lmax(), 2);
        assert_eq!(line.placement(), &[2, 3]);
    }

    #[test]
    fn lemma45_tree_dominated_by_level_line() {
        // The reduction's defining property, on a bigger random-ish tree.
        let g = builders::binary_tree(31).unwrap();
        let tree = g.bfs_tree(0).into_spanning_tree();
        let mut placement = vec![0usize; 31];
        for i in 0..16 {
            placement[15 + (i % 16)] += 1; // leaves
        }
        let tree_sys = TreeSystem::new(&tree, placement.clone(), 1.0).unwrap();
        let line_sys = level_line_of(&tree, &placement, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 700;
        let x = tree_sys.drain_times(trials, &mut rng);
        let y = line_sys.drain_times(trials, &mut rng);
        let v = dominance_violation(&x, &y);
        assert!(
            v < ks_critical_5pct(trials, trials),
            "tree ⪯ level-line violated by {v}"
        );
    }

    #[test]
    #[should_panic(expected = "cover every tree node")]
    fn placement_length_validated() {
        let tree = SpanningTree::from_parents(0, vec![None, Some(0)]).unwrap();
        let _ = level_line_of(&tree, &[1], 1.0);
    }
}
